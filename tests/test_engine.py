"""Unit tests for the slot engine's reception semantics."""

import numpy as np
import pytest

from repro.model import ProtocolError
from repro.sim import resolve_slot, resolve_step
from repro.sim.engine import resolve_step_batch, resolve_varying


def triangle_adj():
    adj = np.zeros((3, 3), dtype=bool)
    for u, v in [(0, 1), (1, 2), (0, 2)]:
        adj[u, v] = adj[v, u] = True
    return adj


def path_adj(n):
    adj = np.zeros((n, n), dtype=bool)
    for u in range(n - 1):
        adj[u, u + 1] = adj[u + 1, u] = True
    return adj


class TestResolveSlot:
    def test_single_broadcaster_is_heard(self):
        adj = path_adj(2)
        out = resolve_slot(
            adj, np.array([5, 5]), np.array([True, False])
        )
        assert out.heard_from[1] == 0
        assert out.heard_from[0] == -1  # broadcaster hears nothing

    def test_different_channels_no_reception(self):
        adj = path_adj(2)
        out = resolve_slot(
            adj, np.array([5, 6]), np.array([True, False])
        )
        assert out.heard_from[1] == -1

    def test_collision_is_silence(self):
        adj = triangle_adj()
        out = resolve_slot(
            adj, np.array([3, 3, 3]), np.array([True, True, False])
        )
        assert out.heard_from[2] == -1
        assert out.contenders[2] == 2

    def test_non_neighbor_does_not_interfere(self):
        adj = path_adj(3)  # 0-1-2; 0 and 2 not adjacent
        out = resolve_slot(
            adj, np.array([7, 7, 7]), np.array([True, False, True])
        )
        # Node 1 has two broadcasting neighbors -> collision.
        assert out.heard_from[1] == -1
        # Node 2's only neighbor is 1 (listening), hears nothing.
        assert out.heard_from[2] == -1

    def test_idle_node_hears_nothing(self):
        adj = path_adj(2)
        out = resolve_slot(
            adj, np.array([4, -1]), np.array([True, False])
        )
        assert out.heard_from[1] == -1

    def test_idle_broadcaster_does_not_transmit(self):
        adj = path_adj(2)
        out = resolve_slot(
            adj, np.array([-1, 4]), np.array([True, False])
        )
        assert out.heard_from[1] == -1

    def test_listener_only_hears_own_channel(self):
        adj = triangle_adj()
        # 1 broadcasts on 8; 2 listens on 9 -> nothing; 0 listens on 8.
        out = resolve_slot(
            adj, np.array([8, 8, 9]), np.array([False, True, False])
        )
        assert out.heard_from[0] == 1
        assert out.heard_from[2] == -1

    def test_shape_validation(self):
        adj = path_adj(2)
        with pytest.raises(ProtocolError):
            resolve_slot(adj, np.array([1, 2, 3]), np.array([True, False]))
        with pytest.raises(ProtocolError):
            resolve_slot(adj, np.array([1, 2]), np.array([True]))


class TestResolveStep:
    def test_coin_gating(self):
        adj = path_adj(2)
        channels = np.array([3, 3])
        tx_role = np.array([True, False])
        coins = np.array([[True, False], [False, False], [True, False]])
        out = resolve_step(adj, channels, tx_role, coins)
        assert out.heard_from[0, 1] == 0
        assert out.heard_from[1, 1] == -1
        assert out.heard_from[2, 1] == 0

    def test_broadcaster_never_hears_in_step(self):
        adj = triangle_adj()
        channels = np.array([2, 2, 2])
        tx_role = np.array([True, True, False])
        coins = np.array([[True, False, False]])
        out = resolve_step(adj, channels, tx_role, coins)
        # Node 1 is a silent-this-slot broadcaster: still hears nothing.
        assert out.heard_from[0, 1] == -1
        assert out.heard_from[0, 2] == 0

    def test_heard_sets(self):
        adj = path_adj(3)
        channels = np.array([1, 1, 1])
        tx_role = np.array([True, False, True])
        coins = np.array([[True, False, False], [False, False, True]])
        out = resolve_step(adj, channels, tx_role, coins)
        sets = out.heard_sets()
        assert sets[1] == {0, 2}

    def test_heard_sets_matches_per_column_scan(self):
        rng = np.random.default_rng(11)
        n = 12
        adj = rng.random((n, n)) < 0.4
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(0, 3, size=n)
        tx_role = rng.random(n) < 0.5
        coins = rng.random((40, n)) < 0.5
        out = resolve_step(adj, channels, tx_role, coins)
        expected = [
            set(
                int(s)
                for s in out.heard_from[:, u][out.heard_from[:, u] >= 0]
            )
            for u in range(n)
        ]
        assert out.heard_sets() == expected

    def test_heard_sets_all_silent(self):
        adj = path_adj(3)
        out = resolve_step(
            adj,
            np.array([1, 2, 3]),
            np.array([True, False, False]),
            np.ones((4, 3), dtype=bool),
        )
        assert out.heard_sets() == [set(), set(), set()]

    def test_matches_slotwise_resolution(self):
        rng = np.random.default_rng(3)
        n = 10
        adj = rng.random((n, n)) < 0.4
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(0, 4, size=n)
        tx_role = rng.random(n) < 0.5
        coins = rng.random((6, n)) < 0.6
        step = resolve_step(adj, channels, tx_role, coins)
        for t in range(6):
            tx = tx_role & coins[t]
            slot = resolve_slot(adj, channels, tx)
            listeners = ~tx_role
            assert np.array_equal(
                step.heard_from[t][listeners], slot.heard_from[listeners]
            )

    def test_coin_shape_validation(self):
        adj = path_adj(2)
        with pytest.raises(ProtocolError):
            resolve_step(
                adj,
                np.array([1, 1]),
                np.array([True, False]),
                np.ones((3, 5), dtype=bool),
            )


class TestResolveVarying:
    def test_matches_slotwise(self):
        rng = np.random.default_rng(7)
        n, slots = 8, 20
        adj = rng.random((n, n)) < 0.5
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(-1, 5, size=(slots, n))
        tx = rng.random((slots, n)) < 0.5
        out = resolve_varying(adj, channels, tx, chunk=7)
        for t in range(slots):
            slot = resolve_slot(adj, channels[t], tx[t])
            assert np.array_equal(out.heard_from[t], slot.heard_from)

    def test_validation(self):
        adj = path_adj(2)
        with pytest.raises(ProtocolError):
            resolve_varying(
                adj, np.ones((4, 3), dtype=int), np.ones((4, 2), dtype=bool)
            )
        with pytest.raises(ProtocolError):
            resolve_varying(
                adj,
                np.ones((4, 2), dtype=int),
                np.ones((4, 2), dtype=bool),
                chunk=0,
            )


def random_step_inputs(seed, n=14, slots=12):
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < 0.35
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    channels = rng.integers(0, 4, size=n)
    tx_role = rng.random(n) < 0.5
    coins = rng.random((slots, n)) < 0.5
    return adj, channels, tx_role, coins, rng


class TestJamPath:
    def test_no_jam_equals_all_false_mask(self):
        adj, channels, tx_role, coins, _ = random_step_inputs(2)
        plain = resolve_step(adj, channels, tx_role, coins)
        masked = resolve_step(
            adj,
            channels,
            tx_role,
            coins,
            jam=np.zeros_like(coins, dtype=bool),
        )
        assert np.array_equal(plain.heard_from, masked.heard_from)

    def test_jam_kills_only_jammed_receptions(self):
        adj, channels, tx_role, coins, rng = random_step_inputs(3)
        jam = rng.random(coins.shape) < 0.4
        plain = resolve_step(adj, channels, tx_role, coins)
        jammed = resolve_step(adj, channels, tx_role, coins, jam=jam)
        # Jammed cells hear nothing; un-jammed cells are untouched.
        assert (jammed.heard_from[jam] == -1).all()
        assert np.array_equal(
            jammed.heard_from[~jam], plain.heard_from[~jam]
        )
        # Contenders are ground truth and ignore jamming entirely.
        assert np.array_equal(jammed.contenders, plain.contenders)

    def test_full_jam_silences_everyone(self):
        adj, channels, tx_role, coins, _ = random_step_inputs(4)
        out = resolve_step(
            adj,
            channels,
            tx_role,
            coins,
            jam=np.ones_like(coins, dtype=bool),
        )
        assert (out.heard_from == -1).all()

    def test_unjammed_step_matches_resolve_varying(self):
        # resolve_varying has no jam path; an un-jammed fixed-channel
        # step must agree with it on every listener.
        adj, channels, tx_role, coins, _ = random_step_inputs(5)
        slots = coins.shape[0]
        step = resolve_step(adj, channels, tx_role, coins)
        varying = resolve_varying(
            adj,
            np.tile(channels, (slots, 1)),
            np.tile(tx_role, (slots, 1)) & coins,
        )
        listeners = ~tx_role
        assert np.array_equal(
            step.heard_from[:, listeners], varying.heard_from[:, listeners]
        )

    def test_jam_shape_validation(self):
        adj, channels, tx_role, coins, _ = random_step_inputs(6)
        with pytest.raises(ProtocolError):
            resolve_step(
                adj,
                channels,
                tx_role,
                coins,
                jam=np.zeros((1, adj.shape[0]), dtype=bool),
            )


class TestResolveStepBatch:
    def test_shared_inputs_match_serial(self):
        adj, channels, tx_role, _, rng = random_step_inputs(7)
        coins = rng.random((4, 10, adj.shape[0])) < 0.5
        out = resolve_step_batch(adj, channels, tx_role, coins)
        assert out.num_trials == 4
        assert out.num_slots == 10
        for b in range(4):
            ref = resolve_step(adj, channels, tx_role, coins[b])
            assert np.array_equal(out.heard_from[b], ref.heard_from)
            assert np.array_equal(out.contenders[b], ref.contenders)

    def test_per_trial_inputs_match_serial(self):
        rng = np.random.default_rng(8)
        n, B, T = 12, 5, 6
        adj = rng.random((n, n)) < 0.4
        adj = np.triu(adj, 1)
        adj = adj | adj.T
        channels = rng.integers(-1, 4, size=(B, n))
        tx_role = rng.random((B, n)) < 0.5
        coins = rng.random((B, T, n)) < 0.5
        jam = rng.random((B, T, n)) < 0.3
        out = resolve_step_batch(adj, channels, tx_role, coins, jam=jam)
        for b in range(B):
            ref = resolve_step(
                adj, channels[b], tx_role[b], coins[b], jam=jam[b]
            )
            assert np.array_equal(out.heard_from[b], ref.heard_from)
            assert np.array_equal(out.contenders[b], ref.contenders)

    def test_trial_slicing(self):
        adj, channels, tx_role, _, rng = random_step_inputs(9)
        coins = rng.random((3, 5, adj.shape[0])) < 0.5
        out = resolve_step_batch(adj, channels, tx_role, coins)
        sliced = out.trial(1)
        assert np.array_equal(sliced.heard_from, out.heard_from[1])
        assert sliced.num_slots == 5

    def test_validation(self):
        adj, channels, tx_role, coins, _ = random_step_inputs(10)
        n = adj.shape[0]
        with pytest.raises(ProtocolError):
            resolve_step_batch(adj, channels, tx_role, coins)  # 2-D coins
        batch_coins = np.zeros((2, 3, n), dtype=bool)
        with pytest.raises(ProtocolError):
            resolve_step_batch(
                adj, np.zeros((3, n), dtype=int), tx_role, batch_coins
            )
        with pytest.raises(ProtocolError):
            resolve_step_batch(
                adj,
                channels,
                tx_role,
                batch_coins,
                jam=np.zeros((2, 4, n), dtype=bool),
            )
