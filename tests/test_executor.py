"""Unit tests for the pluggable trial executors."""

import pytest

from repro.harness import (
    BatchedExecutor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    run_trials,
)
from repro.model import HarnessError


def square(s):
    return s * s


class TestGetExecutor:
    def test_default_is_serial(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)

    def test_ints_map_to_process_pool(self):
        ex = get_executor(3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 3

    def test_zero_means_cpu_count(self):
        assert get_executor(0).jobs >= 1

    def test_batch_names(self):
        assert isinstance(get_executor("batch"), BatchedExecutor)
        assert isinstance(get_executor("batched"), BatchedExecutor)

    def test_numeric_string(self):
        ex = get_executor("4")
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 4

    def test_executor_instances_pass_through(self):
        ex = ParallelExecutor(jobs=2)
        assert get_executor(ex) is ex

    def test_rejects_garbage(self):
        with pytest.raises(HarnessError):
            get_executor("warp-speed")
        with pytest.raises(HarnessError):
            get_executor(-1)
        with pytest.raises(HarnessError):
            get_executor(3.5)


class TestSerialExecutor:
    def test_preserves_order(self):
        assert SerialExecutor().run(square, [3, 1, 2]) == [9, 1, 4]

    def test_wraps_failure_with_seed(self):
        def bad(s):
            raise ValueError("boom")

        with pytest.raises(HarnessError, match="seed=17"):
            SerialExecutor().run(bad, [17])


class TestParallelExecutor:
    def test_matches_serial(self):
        seeds = list(range(20))
        assert ParallelExecutor(jobs=2).run(square, seeds) == [
            s * s for s in seeds
        ]

    def test_closures_cross_the_fork(self):
        # Experiment trials are closures over numpy-heavy network
        # objects; the fork-based pool must run them unpickled.
        offset = 1000

        def trial(s):
            return s + offset

        assert ParallelExecutor(jobs=2).run(trial, [1, 2, 3, 4]) == [
            1001,
            1002,
            1003,
            1004,
        ]

    def test_single_seed_falls_back_to_serial(self):
        assert ParallelExecutor(jobs=4).run(square, [5]) == [25]

    def test_failure_names_the_seed(self):
        def bad(s):
            if s == 3:
                raise RuntimeError("worker boom")
            return s

        with pytest.raises(HarnessError, match="seed=3"):
            ParallelExecutor(jobs=2).run(bad, [1, 2, 3, 4])

    def test_chunk_size_validation(self):
        with pytest.raises(HarnessError):
            ParallelExecutor(jobs=2, chunk_size=0)

    def test_explicit_chunking_preserves_order(self):
        seeds = list(range(13))
        out = ParallelExecutor(jobs=2, chunk_size=3).run(square, seeds)
        assert out == [s * s for s in seeds]


class TestBatchedExecutor:
    def test_uses_run_batch_when_offered(self):
        calls = []

        def trial(s):
            raise AssertionError("serial path must not run")

        def run_batch(seeds):
            calls.append(list(seeds))
            return [s * 10 for s in seeds]

        trial.run_batch = run_batch
        assert BatchedExecutor().run(trial, [1, 2]) == [10, 20]
        assert calls == [[1, 2]]

    def test_falls_back_to_serial_without_run_batch(self):
        assert BatchedExecutor().run(square, [2, 3]) == [4, 9]

    def test_rejects_wrong_result_count(self):
        def trial(s):
            return s

        def short_batch(seeds):
            return [0]

        trial.run_batch = short_batch
        with pytest.raises(HarnessError, match="1 results for 2 seeds"):
            BatchedExecutor().run(trial, [1, 2])

    def test_wraps_batch_failure(self):
        def trial(s):
            return s

        def run_batch(seeds):
            raise ValueError("vector boom")

        trial.run_batch = run_batch
        with pytest.raises(HarnessError, match="vector boom"):
            BatchedExecutor().run(trial, [1, 2])


class TestRunTrialsExecutors:
    def test_all_strategies_agree(self):
        serial = run_trials(square, 8, seed=4)
        parallel = run_trials(square, 8, seed=4, executor=2)
        batched = run_trials(square, 8, seed=4, executor="batch")
        assert serial == parallel == batched

    def test_failure_surfaces_failing_seed(self):
        def bad(s):
            raise ValueError("mid-sweep boom")

        with pytest.raises(HarnessError, match=r"seed=\d+"):
            run_trials(bad, 3, seed=0)
