"""Tests for the streaming trial path.

Covers the online accumulators (Welford moments, P² quantile sketch,
streaming rates), the chunked executor/seed-stream layer, the
``PrecisionSpec`` stopping contract, and the scenario/campaign plumbing
built on top of them.
"""

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import (
    P2Quantile,
    StreamingMoments,
    StreamingRate,
    StreamingSummary,
    mean_halfwidth,
    normal_quantile,
    rate_halfwidth,
    summarize,
    t_quantile,
    wilson_interval,
)
from repro.harness import (
    BatchedExecutor,
    StreamingExecutor,
    get_executor,
    run_trials,
    stream_trials,
)
from repro.model import HarnessError
from repro.scenarios import (
    PrecisionSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepSpec,
    apply_overrides,
    paper_spec,
    run_scenario,
    run_scenario_spec,
    spec_digest,
    spec_from_dict,
    spec_to_dict,
    stream_scenario_spec,
)
from repro.sim.rng import RngHub


def random_chunks(values, rng):
    """Split ``values`` at random boundaries (possibly empty chunks)."""
    cuts = sorted(
        rng.integers(0, len(values) + 1, size=rng.integers(1, 9))
    )
    bounds = [0, *cuts, len(values)]
    return [
        values[a:b] for a, b in zip(bounds, bounds[1:])
    ]


class TestStreamingMoments:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_numpy_across_random_chunkings(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(5.0, 3.0, size=rng.integers(50, 400))
        moments = StreamingMoments()
        for chunk in random_chunks(data, rng):
            moments.update(chunk)
        assert moments.count == data.size
        assert moments.mean == pytest.approx(np.mean(data), rel=1e-12)
        assert moments.std == pytest.approx(
            np.std(data, ddof=1), rel=1e-10
        )
        assert moments.minimum == np.min(data)
        assert moments.maximum == np.max(data)

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(7)
        xs, ys = rng.normal(size=31), rng.normal(size=18)
        ab, ba = StreamingMoments(), StreamingMoments()
        a1, b1 = StreamingMoments(), StreamingMoments()
        a1.update(xs)
        b1.update(ys)
        ab.update(xs)
        ab.merge(b1)
        ba.update(ys)
        ba.merge(a1)
        assert ab.mean == ba.mean
        assert ab.variance == ba.variance

    def test_empty_update_is_noop(self):
        moments = StreamingMoments()
        moments.update([])
        assert moments.count == 0
        assert moments.variance == 0.0

    def test_degenerate_counts(self):
        moments = StreamingMoments()
        moments.update([3.0])
        assert moments.count == 1
        assert moments.mean == 3.0
        assert moments.std == 0.0


class TestP2Quantile:
    def test_exact_below_buffer(self):
        sketch = P2Quantile(0.5)
        sketch.update([4.0, 1.0, 9.0])
        assert sketch.value() == np.percentile([4.0, 1.0, 9.0], 50)

    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_tracks_uniform_quantiles(self, p):
        rng = np.random.default_rng(11)
        data = rng.uniform(0.0, 1.0, size=4000)
        sketch = P2Quantile(p)
        sketch.update(data)
        assert sketch.value() == pytest.approx(
            np.percentile(data, 100 * p), abs=0.02
        )

    def test_merge_across_random_chunkings(self):
        rng = np.random.default_rng(13)
        data = rng.normal(0.0, 1.0, size=2000)
        merged = P2Quantile(0.5)
        for chunk in random_chunks(data, rng):
            part = P2Quantile(0.5)
            part.update(chunk)
            merged.merge(part)
        assert merged.count == data.size
        assert merged.value() == pytest.approx(
            np.percentile(data, 50), abs=0.08
        )

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(17)
        xs, ys = rng.normal(size=300), rng.normal(2.0, 1.0, size=200)
        a1, a2 = P2Quantile(0.5), P2Quantile(0.5)
        b1, b2 = P2Quantile(0.5), P2Quantile(0.5)
        a1.update(xs)
        a2.update(xs)
        b1.update(ys)
        b2.update(ys)
        a1.merge(b1)
        b2.merge(a2)
        assert a1.value() == b2.value()
        assert a1.count == b2.count

    def test_tiny_merge_stays_exact(self):
        a, b = P2Quantile(0.5), P2Quantile(0.5)
        a.update([1.0, 5.0])
        b.update([3.0])
        a.merge(b)
        assert a.value() == np.percentile([1.0, 5.0, 3.0], 50)


class TestStreamingSummary:
    def test_small_sample_matches_summarize(self):
        values = [2.0, 7.0, 4.0]
        streaming = StreamingSummary()
        streaming.update(values)
        assert streaming.summary() == summarize(values)

    def test_large_sample_moments_exact_quantiles_close(self):
        rng = np.random.default_rng(19)
        data = rng.normal(10.0, 2.0, size=3000)
        streaming = StreamingSummary()
        for chunk in random_chunks(data, rng):
            streaming.update(chunk)
        exact = summarize(data)
        got = streaming.summary()
        assert got.count == exact.count
        assert got.mean == pytest.approx(exact.mean, rel=1e-12)
        assert got.std == pytest.approx(exact.std, rel=1e-10)
        assert got.minimum == exact.minimum
        assert got.maximum == exact.maximum
        assert got.median == pytest.approx(exact.median, abs=0.1)
        assert got.p10 == pytest.approx(exact.p10, abs=0.15)
        assert got.p90 == pytest.approx(exact.p90, abs=0.15)


class TestHalfwidths:
    def test_t_quantile_known_values(self):
        assert t_quantile(0.975, 5) == pytest.approx(2.5706, abs=5e-3)
        assert t_quantile(0.975, 30) == pytest.approx(2.0423, abs=2e-3)
        assert t_quantile(0.975, 10**6) == pytest.approx(
            normal_quantile(0.975), abs=1e-4
        )

    def test_t_quantile_rejects_bad_inputs(self):
        with pytest.raises(HarnessError):
            t_quantile(0.0, 5)
        with pytest.raises(HarnessError):
            t_quantile(1.0, 5)
        with pytest.raises(HarnessError):
            t_quantile(0.975, 0)

    def test_single_trial_interval_is_unresolved_not_nan(self):
        # Regression: one trial has std 0.0; the t interval must report
        # "not yet resolvable" (inf), never NaN, so stopping rules keep
        # running instead of comparing against NaN.
        assert mean_halfwidth(0, 0.0) == math.inf
        assert mean_halfwidth(1, 0.0) == math.inf
        assert not math.isnan(mean_halfwidth(1, 0.0))

    def test_mean_halfwidth_matches_t_formula(self):
        expected = t_quantile(0.975, 99) * 1.0 / math.sqrt(100)
        assert mean_halfwidth(100, 1.0) == pytest.approx(expected)

    def test_rate_halfwidth(self):
        assert rate_halfwidth(0, 0) == math.inf
        low, high = wilson_interval(30, 100, z=normal_quantile(0.975))
        assert rate_halfwidth(30, 100) == pytest.approx((high - low) / 2)


class TestSeedStream:
    def test_prefix_stable_with_spawn_seeds(self):
        reference = RngHub(42).spawn_seeds(100)
        stream = RngHub(42).seed_stream()
        chunked = []
        for size in (1, 7, 32, 60):
            chunked.extend(stream.take(size))
        assert chunked == reference
        assert stream.drawn == 100

    def test_labels_decorrelate(self):
        a = RngHub(42).seed_stream(name="a").take(5)
        b = RngHub(42).seed_stream(name="b").take(5)
        assert a != b


def square_trial(seed: int) -> int:
    return seed % 97


class TestStreamingExecutor:
    def test_jobs_grammar(self):
        assert isinstance(get_executor("stream"), StreamingExecutor)
        assert get_executor("stream:512").chunk_size == 512
        assert isinstance(
            get_executor("streaming:8"), StreamingExecutor
        )

    def test_rejects_nesting(self):
        with pytest.raises(HarnessError):
            StreamingExecutor(inner=StreamingExecutor())

    def test_run_protocol_is_bit_identical(self):
        seeds = RngHub(3).spawn_seeds(50)
        reference = BatchedExecutor().run(square_trial, seeds)
        got = StreamingExecutor(chunk_size=7).run(square_trial, seeds)
        assert got == reference

    def test_iter_chunks_sizes_and_ceiling(self):
        executor = StreamingExecutor(chunk_size=8)
        stream = RngHub(0).seed_stream()
        sizes = [
            len(chunk)
            for chunk in executor.iter_chunks(
                square_trial, stream, max_trials=20
            )
        ]
        assert sizes == [8, 8, 4]


class TestStreamTrials:
    def test_full_run_matches_run_trials(self):
        reference = run_trials(square_trial, 100, seed=5)
        collected = []

        def consume(results, total):
            collected.extend(results)
            return False

        ran = stream_trials(
            square_trial,
            5,
            consume,
            max_trials=100,
            executor=StreamingExecutor(chunk_size=9),
        )
        assert ran == 100
        assert collected == reference

    def test_early_stop_leaves_exact_prefix(self):
        reference = run_trials(square_trial, 64, seed=5)
        collected = []

        def consume(results, total):
            collected.extend(results)
            return total >= 30

        ran = stream_trials(
            square_trial,
            5,
            consume,
            max_trials=64,
            executor=StreamingExecutor(chunk_size=16),
        )
        assert ran == 32  # stops at the chunk boundary past 30
        assert collected == reference[:32]

    def test_rejects_bad_ceiling(self):
        with pytest.raises(HarnessError):
            stream_trials(square_trial, 0, lambda r, t: True, max_trials=0)


def tiny_count_spec(**kwargs):
    base = dict(
        name="tiny-stream-count",
        title="tiny streaming count",
        trials=8,
        sweep=SweepSpec(axes={"m": [2, 4]}),
        protocol=ProtocolSpec(
            "count", {"m": "$m", "max_count": 8, "log_n": 3}
        ),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def loose_precision(**kwargs):
    base = dict(
        targets={"band_rate": 0.5},
        min_trials=8,
        max_trials=64,
        chunk=8,
    )
    base.update(kwargs)
    return PrecisionSpec(**base)


class TestPrecisionSpec:
    def test_validation(self):
        with pytest.raises(HarnessError):
            PrecisionSpec(targets={})
        with pytest.raises(HarnessError):
            PrecisionSpec(targets={"success": 0.0})
        with pytest.raises(HarnessError):
            PrecisionSpec(targets={"success": 0.1}, confidence=1.0)
        with pytest.raises(HarnessError):
            PrecisionSpec(targets={"success": 0.1}, min_trials=0)
        with pytest.raises(HarnessError):
            PrecisionSpec(
                targets={"success": 0.1}, min_trials=10, max_trials=5
            )
        with pytest.raises(HarnessError):
            PrecisionSpec(targets={"success": 0.1}, chunk=-1)

    def test_round_trips_through_json(self):
        spec = tiny_count_spec(precision=loose_precision())
        payload = json.loads(json.dumps(spec_to_dict(spec)))
        rebuilt = spec_from_dict(payload)
        assert rebuilt.precision == spec.precision
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_precision_changes_digest(self):
        plain = tiny_count_spec()
        streamed = tiny_count_spec(precision=loose_precision())
        assert spec_digest(plain) != spec_digest(streamed)

    def test_overrides_build_precision_from_nothing(self):
        spec = apply_overrides(
            tiny_count_spec(),
            {
                "precision.targets.band_rate": "0.25",
                "precision.max_trials": "128",
            },
        )
        assert spec.precision is not None
        assert spec.precision.targets == {"band_rate": 0.25}
        assert spec.precision.max_trials == 128

    def test_plan_based_specs_reject_precision(self):
        e1 = paper_spec("E1")
        with pytest.raises(HarnessError):
            replace(e1, precision=loose_precision())


class TestStreamScenario:
    def test_easy_point_stops_at_min_trials(self):
        table = stream_scenario_spec(
            tiny_count_spec(precision=loose_precision())
        )
        for row in table.rows:
            assert row["trials"] == 8
            assert row["converged"] is True
            assert row["ci_band_rate"] <= 0.5

    def test_hard_point_runs_to_max_trials(self):
        table = stream_scenario_spec(
            tiny_count_spec(
                precision=loose_precision(targets={"band_rate": 1e-6})
            )
        )
        for row in table.rows:
            assert row["trials"] == 64
            assert row["converged"] is False

    def test_rate_metrics_match_fixed_path_exactly(self):
        spec = tiny_count_spec()
        fixed = run_scenario_spec(spec, trials=64, seed=0)
        streamed = stream_scenario_spec(
            spec,
            seed=0,
            precision=loose_precision(
                targets={"band_rate": 1e-6}, min_trials=64
            ),
        )
        for fixed_row, streamed_row in zip(fixed.rows, streamed.rows):
            assert streamed_row["band_rate"] == fixed_row["band_rate"]
            assert streamed_row["slots"] == fixed_row["slots"]
            assert streamed_row["m"] == fixed_row["m"]

    def test_rejects_untargetable_metric(self):
        with pytest.raises(HarnessError, match="median_ratio"):
            stream_scenario_spec(
                tiny_count_spec(),
                precision=loose_precision(targets={"median_ratio": 0.1}),
            )

    def test_requires_a_precision_contract(self):
        with pytest.raises(HarnessError, match="precision"):
            stream_scenario_spec(tiny_count_spec())

    def test_rejects_plan_based_specs(self):
        with pytest.raises(HarnessError):
            stream_scenario_spec(
                paper_spec("E1"), precision=loose_precision()
            )


class TestRunScenarioRouting:
    def test_precision_spec_routes_through_streaming(self):
        table = run_scenario(
            tiny_count_spec(precision=loose_precision()), trials=999
        )
        for row in table.rows:
            assert row["trials"] == 8  # trials arg is ignored
            assert "converged" in row
            assert "ci_band_rate" in row

    def test_streamed_cache_never_collides_with_fixed(self, tmp_path):
        plain = tiny_count_spec()
        streamed_spec = tiny_count_spec(
            precision=loose_precision(max_trials=8)
        )
        fixed = run_scenario(
            plain, trials=8, cache=True, cache_dir=tmp_path
        )
        streamed = run_scenario(
            streamed_spec, cache=True, cache_dir=tmp_path
        )
        assert "trials" not in fixed.rows[0]
        assert streamed.rows[0]["trials"] == 8
        replay = run_scenario(
            streamed_spec, cache=True, cache_dir=tmp_path
        )
        assert replay.rows == streamed.rows


class TestCampaignPrecision:
    def test_manifest_records_declared_and_achieved(self, tmp_path):
        from repro.campaigns.orchestrate import run_campaign
        from repro.campaigns.spec import CampaignEntry, CampaignSpec

        spec = CampaignSpec(
            name="stream-smoke",
            title="streaming smoke",
            description="precision provenance test",
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="streamed",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                        "precision.targets.band_rate": 0.5,
                        "precision.min_trials": 8,
                        "precision.max_trials": 64,
                        "precision.chunk": 8,
                    },
                ),
            ),
        )
        result = run_campaign(spec, store=tmp_path, log=lambda s: None)
        assert result.counts() == {"ran": 1, "cached": 0, "failed": 0}
        manifest = json.loads(
            (
                result.path / "entries" / "streamed" / "manifest.json"
            ).read_text(encoding="utf-8")
        )
        assert manifest["trials"] == 64  # the contract's ceiling
        block = manifest["precision"]
        assert block["declared"]["targets"] == {"band_rate": 0.5}
        achieved = block["achieved"]
        assert achieved["all_converged"] is True
        assert achieved["points"][0]["trials"] == 8
        assert achieved["total_trials"] == 8
        resumed = run_campaign(spec, store=tmp_path, log=lambda s: None)
        assert resumed.counts() == {"ran": 0, "cached": 1, "failed": 0}
