"""Unit tests for spectrum analytics."""

import pytest

from repro.analysis.spectrum import (
    channel_usage,
    density_estimate_quality,
    reception_histogram,
)
from repro.core import CSeek
from repro.model import HarnessError


@pytest.fixture(scope="module")
def star_run(star_net):
    return CSeek(star_net, seed=3).run()


class TestReceptionHistogram:
    def test_counts_match_trace(self, star_net, star_run):
        hist = reception_histogram(star_run)
        assert sum(hist.values()) == star_run.trace.reception_count()

    def test_channels_are_physical(self, star_net, star_run):
        universe = star_net.assignment.universe()
        assert set(reception_histogram(star_run)) <= universe


class TestChannelUsage:
    def test_covers_whole_universe(self, star_net, star_run):
        usage = channel_usage(star_net, star_run)
        assert len(usage) == star_net.assignment.universe_size

    def test_sorted_by_receptions(self, star_net, star_run):
        usage = channel_usage(star_net, star_run)
        receptions = [u.receptions for u in usage]
        assert receptions == sorted(receptions, reverse=True)

    def test_core_channels_dominate_on_global_core_star(
        self, star_net, star_run
    ):
        """All discovery traffic must flow over the 2 shared core
        channels — private padding channels carry nothing."""
        usage = channel_usage(star_net, star_run)
        core = star_net.shared_channels(0, 1)
        busy = {u.global_id for u in usage if u.receptions > 0}
        assert busy <= set(core)

    def test_crowding_matches_ground_truth(self, star_net, star_run):
        usage = {u.global_id: u for u in channel_usage(star_net, star_run)}
        hub_crowding = star_net.crowding(0)
        for g, count in hub_crowding.items():
            assert usage[g].max_crowding >= count


class TestDensityQuality:
    def test_scores_track_crowding_on_star(self, star_net, star_run):
        """The hub's accumulated scores must rank core channels (9
        neighbors each) above private ones (0 neighbors)."""
        quality = density_estimate_quality(star_net, star_run, node=0)
        crowded = [s for s, true in quality.values() if true > 0]
        empty = [s for s, true in quality.values() if true == 0]
        assert min(crowded) > max(empty)

    def test_covers_all_node_channels(self, star_net, star_run):
        quality = density_estimate_quality(star_net, star_run, node=1)
        assert len(quality) == star_net.c

    def test_rejects_bad_node(self, star_net, star_run):
        with pytest.raises(HarnessError):
            density_estimate_quality(star_net, star_run, node=99)
