"""Property-based tests for the model layer (hypothesis)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import per_edge_overlaps
from repro.model import ChannelAssignment


@st.composite
def random_tree_and_targets(draw):
    """A random tree plus feasible per-edge overlap targets."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    for v in range(1, n):
        parent = int(rng.integers(0, v))
        graph.add_edge(parent, v)
    targets = {}
    for u, v in graph.edges():
        targets[(min(u, v), max(u, v))] = draw(
            st.integers(min_value=1, max_value=3)
        )
    max_need = max(
        sum(t for e, t in targets.items() if node in e)
        for node in graph.nodes()
    )
    c = draw(st.integers(min_value=max_need, max_value=max_need + 4))
    return graph, targets, c, seed


class TestPerEdgeOverlapProperties:
    @given(random_tree_and_targets())
    @settings(max_examples=60, deadline=None)
    def test_exact_overlaps_and_disjoint_nonedges(self, case):
        graph, targets, c, seed = case
        rng = np.random.default_rng(seed)
        assignment = per_edge_overlaps(graph, c, targets, rng)
        # Every edge shares exactly its target.
        for (u, v), t in targets.items():
            assert assignment.overlap_size(u, v) == t
        # Non-adjacent pairs share nothing (fresh ids per edge).
        nodes = sorted(graph.nodes())
        for u in nodes:
            for v in nodes:
                if u < v and not graph.has_edge(u, v):
                    assert assignment.overlap_size(u, v) == 0

    @given(random_tree_and_targets())
    @settings(max_examples=30, deadline=None)
    def test_rows_have_exactly_c_distinct_channels(self, case):
        graph, targets, c, seed = case
        rng = np.random.default_rng(seed)
        assignment = per_edge_overlaps(graph, c, targets, rng)
        for u in sorted(graph.nodes()):
            assert len(assignment.channels_of(u)) == c


class TestLocalLabelProperties:
    @given(
        st.lists(
            st.sets(
                st.integers(min_value=0, max_value=50),
                min_size=4,
                max_size=4,
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_labels_are_permutations(self, sets, seed):
        rng = np.random.default_rng(seed)
        assignment = ChannelAssignment.from_sets(sets, rng=rng)
        for u, chans in enumerate(sets):
            row = assignment.local_row(u)
            assert sorted(row) == sorted(chans)
            # Round-trip label <-> global id.
            for label, g in enumerate(row):
                assert assignment.local_label_of(u, g) == label

    @given(
        st.lists(
            st.sets(
                st.integers(min_value=0, max_value=30),
                min_size=3,
                max_size=3,
            ),
            min_size=2,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=50, deadline=None)
    def test_overlap_matrix_symmetric(self, sets, seed):
        rng = np.random.default_rng(seed)
        assignment = ChannelAssignment.from_sets(sets, rng=rng)
        m = assignment.overlap_matrix()
        assert (m == m.T).all()
        assert (np.diag(m) == assignment.c).all()
