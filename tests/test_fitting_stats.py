"""Unit tests for fitting and trial statistics."""

import math

import numpy as np
import pytest

from repro.analysis import (
    find_crossover,
    fit_power_law,
    mean_halfwidth,
    rate_halfwidth,
    ratio_curve,
    success_rate,
    summarize,
    wilson_interval,
)
from repro.model import HarnessError


class TestPowerFit:
    def test_recovers_exact_law(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.constant == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_noisy_slope(self):
        rng = np.random.default_rng(1)
        xs = np.linspace(4, 128, 12)
        ys = 5 * xs**1.5 * np.exp(rng.normal(0, 0.05, xs.size))
        fit = fit_power_law(xs, ys)
        assert 1.35 <= fit.slope <= 1.65

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(8.0) == pytest.approx(16.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(HarnessError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(HarnessError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(HarnessError):
            fit_power_law([1.0, 2.0], [1.0])


class TestRatioCurve:
    def test_basic(self):
        out = ratio_curve([10.0, 20.0], [2.0, 5.0])
        assert out.tolist() == [5.0, 4.0]

    def test_rejects_mismatch_and_zero(self):
        with pytest.raises(HarnessError):
            ratio_curve([1.0], [1.0, 2.0])
        with pytest.raises(HarnessError):
            ratio_curve([1.0], [0.0])


class TestCrossover:
    def test_interpolated_crossing(self):
        xs = [1.0, 2.0, 3.0]
        a = [0.0, 1.0, 4.0]
        b = [2.0, 2.0, 2.0]
        x = find_crossover(xs, a, b)
        assert 2.0 < x < 3.0

    def test_crossed_from_start(self):
        assert find_crossover([1.0, 2.0], [5.0, 6.0], [1.0, 1.0]) == 1.0

    def test_never_crosses(self):
        assert find_crossover([1.0, 2.0], [0.0, 1.0], [5.0, 5.0]) is None

    def test_validation(self):
        with pytest.raises(HarnessError):
            find_crossover([1.0], [1.0, 2.0], [1.0])
        with pytest.raises(HarnessError):
            find_crossover([], [], [])


class TestTrialStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std > 0

    def test_summarize_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(HarnessError):
            summarize([])

    def test_success_rate(self):
        assert success_rate([True, True, False, False]) == 0.5
        with pytest.raises(HarnessError):
            success_rate([])

    def test_wilson_interval_contains_point(self):
        lo, hi = wilson_interval(8, 10)
        assert lo < 0.8 < hi
        assert 0.0 <= lo <= hi <= 1.0

    def test_wilson_extremes_stay_in_unit(self):
        lo, hi = wilson_interval(0, 5)
        assert lo == 0.0
        lo, hi = wilson_interval(5, 5)
        assert hi == 1.0

    def test_wilson_validation(self):
        with pytest.raises(HarnessError):
            wilson_interval(1, 0)
        with pytest.raises(HarnessError):
            wilson_interval(6, 5)


class TestIntervalDegradation:
    """Intervals over too few trials must be inf, never NaN.

    Regression: a single trial has sample std 0.0 and df 0; a naive t
    interval divides by zero. Stopping rules compare half-widths
    against targets, and ``NaN <= target`` is silently False — the
    point would stop immediately with garbage precision.
    """

    def test_single_trial_mean_halfwidth_is_inf(self):
        assert mean_halfwidth(1, 0.0) == math.inf
        assert mean_halfwidth(0, 0.0) == math.inf
        assert not math.isnan(mean_halfwidth(1, 0.0))

    def test_two_trials_resolve(self):
        assert math.isfinite(mean_halfwidth(2, 1.0))

    def test_zero_trial_rate_halfwidth_is_inf(self):
        assert rate_halfwidth(0, 0) == math.inf
