"""Unit tests for the naive baselines and omniscient floors."""

import numpy as np
import pytest

from repro.baselines import (
    NaiveBroadcast,
    NaiveDiscovery,
    broadcast_floor,
    discovery_floor,
    tree_broadcast_floor,
)
from repro.graphs import build_theorem14_tree
from repro.model import ProtocolError


class TestNaiveDiscovery:
    def test_full_discovery_within_schedule(self, small_path_net):
        nd = NaiveDiscovery(small_path_net, seed=1)
        result = nd.run()
        report = nd.verify(result)
        assert report.success, report.missing

    def test_discovered_are_true_neighbors(self, small_path_net):
        result = NaiveDiscovery(small_path_net, seed=2).run()
        truth = small_path_net.true_neighbor_sets()
        for u in range(small_path_net.n):
            assert result.discovered[u] <= set(truth[u])

    def test_max_slots_override(self, small_path_net):
        nd = NaiveDiscovery(small_path_net, seed=3, max_slots=10)
        assert nd.schedule_slots == 10
        assert nd.run().total_slots == 10

    def test_rejects_bad_max_slots(self, small_path_net):
        with pytest.raises(ProtocolError):
            NaiveDiscovery(small_path_net, max_slots=0)

    def test_deterministic(self, small_path_net):
        r1 = NaiveDiscovery(small_path_net, seed=4).run()
        r2 = NaiveDiscovery(small_path_net, seed=4).run()
        assert r1.discovered == r2.discovered

    def test_schedule_scales_with_delta(self, small_path_net, star_net):
        path_nd = NaiveDiscovery(small_path_net, seed=0)
        star_nd = NaiveDiscovery(star_net, seed=0)
        # The star's Delta (9) dwarfs the path's (2); with comparable
        # c^2/k the naive schedule must be much longer on the star.
        assert star_nd.schedule_slots > path_nd.schedule_slots


class TestNaiveBroadcast:
    def test_full_delivery(self, small_path_net):
        result = NaiveBroadcast(small_path_net, source=0, seed=1).run()
        assert result.success
        assert result.informed_slot[0] == 0

    def test_early_stop_undershoots_schedule(self, small_path_net):
        result = NaiveBroadcast(small_path_net, source=0, seed=2).run()
        assert result.total_slots <= result.scheduled_slots

    def test_no_early_stop_runs_schedule(self, small_path_net):
        result = NaiveBroadcast(
            small_path_net, source=0, seed=3, early_stop=False
        ).run()
        assert result.total_slots == result.scheduled_slots

    def test_informed_slots_monotone_on_path(self, small_path_net):
        result = NaiveBroadcast(small_path_net, source=0, seed=4).run()
        slots = result.informed_slot
        assert all(slots[i] <= slots[i + 1] for i in range(len(slots) - 1))

    def test_causality_no_teleporting(self, small_path_net):
        """A node is informed only after some neighbor was informed."""
        result = NaiveBroadcast(small_path_net, source=0, seed=5).run()
        slots = result.informed_slot
        for u in range(1, small_path_net.n):
            neighbor_slots = [
                slots[int(v)] for v in small_path_net.neighbors(u)
            ]
            assert min(neighbor_slots) < slots[u]

    def test_rejects_bad_source(self, small_path_net):
        with pytest.raises(ProtocolError):
            NaiveBroadcast(small_path_net, source=-1)

    def test_deterministic(self, small_path_net):
        r1 = NaiveBroadcast(small_path_net, source=0, seed=6).run()
        r2 = NaiveBroadcast(small_path_net, source=0, seed=6).run()
        assert np.array_equal(r1.informed_slot, r2.informed_slot)


class TestFloors:
    def test_discovery_floor_is_delta(self, star_net):
        assert discovery_floor(star_net) == star_net.max_degree

    def test_broadcast_floor_on_path(self, small_path_net):
        # Greedy serialization on a path: one new node per slot.
        assert broadcast_floor(small_path_net, source=0) == (
            small_path_net.n - 1
        )

    def test_broadcast_floor_on_tree(self):
        net = build_theorem14_tree(c=4, depth=2, seed=1)
        floor = broadcast_floor(net, source=0)
        # Analytic floor: depth * (fanout) = 2 * 3.
        assert floor >= tree_broadcast_floor(c=4, delta=4, depth=2)

    def test_tree_floor_formula(self):
        assert tree_broadcast_floor(c=4, delta=10, depth=3) == 9
        assert tree_broadcast_floor(c=10, delta=4, depth=3) == 9

    def test_tree_floor_rejects_degenerate(self):
        with pytest.raises(ProtocolError):
            tree_broadcast_floor(c=1, delta=5, depth=2)
        with pytest.raises(ProtocolError):
            tree_broadcast_floor(c=4, delta=4, depth=0)

    def test_broadcast_floor_rejects_bad_source(self, small_path_net):
        with pytest.raises(ProtocolError):
            broadcast_floor(small_path_net, source=99)
