"""Shared fixtures: small, fast, deterministic networks."""

from __future__ import annotations

import pytest

from repro.core.constants import ProtocolConstants
from repro.graphs import (
    build_network,
    build_two_node_network,
    path,
    path_of_cliques,
    random_regular,
    star,
)


@pytest.fixture(scope="session")
def fast_constants() -> ProtocolConstants:
    return ProtocolConstants.fast()


@pytest.fixture(scope="session")
def small_regular_net():
    """20-node 4-regular network, exact overlap k=2, c=8."""
    graph = random_regular(20, 4, seed=7)
    return build_network(graph, c=8, k=2, seed=11)


@pytest.fixture(scope="session")
def small_path_net():
    """8-node path, exact overlap k=2, c=6."""
    return build_network(path(8), c=6, k=2, seed=3)


@pytest.fixture(scope="session")
def clique_chain_net():
    """3 cliques of 4 bridged in a chain, exact overlap k=1, c=8."""
    return build_network(path_of_cliques(3, 4), c=8, k=1, seed=5)


@pytest.fixture(scope="session")
def star_net():
    """Star with 9 leaves, shared global core k=2, c=6 (crowded hub)."""
    return build_network(star(10), c=6, k=2, seed=9, kind="global_core")


@pytest.fixture(scope="session")
def hetero_net():
    """4-regular network with mixed overlaps k=2 / kmax=4, c=16."""
    graph = random_regular(16, 4, seed=13)
    return build_network(
        graph, c=16, k=2, seed=17, kind="heterogeneous", kmax=4
    )


@pytest.fixture(scope="session")
def two_node_net():
    """The Lemma 11 two-node network: c=8, k=2."""
    return build_two_node_network(c=8, k=2, seed=21)
