"""Unit tests for line-graph construction (Fact 7 substrate)."""

import pytest

from repro.core import LineGraph, edges_from_discovery
from repro.model import ProtocolError


class TestEdgesFromDiscovery:
    def test_mutual_requires_both_directions(self):
        discovered = [{1}, set(), set()]
        assert edges_from_discovery(discovered, mutual=True) == []
        assert edges_from_discovery(discovered, mutual=False) == [(0, 1)]

    def test_canonicalization(self):
        discovered = [{1}, {0}]
        assert edges_from_discovery(discovered) == [(0, 1)]

    def test_rejects_invalid_identity(self):
        with pytest.raises(ProtocolError):
            edges_from_discovery([{5}, set()])
        with pytest.raises(ProtocolError):
            edges_from_discovery([{0}, set()])


class TestLineGraph:
    def triangle(self):
        return LineGraph.from_edges([(0, 1), (1, 2), (0, 2)])

    def test_triangle_structure(self):
        lg = self.triangle()
        assert lg.num_virtual == 3
        # In a triangle every pair of edges shares an endpoint.
        for adj in lg.neighbors:
            assert len(adj) == 2
        assert lg.max_degree() == 2

    def test_path_line_graph_is_path(self):
        lg = LineGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert lg.neighbors[0] == [1]
        assert lg.neighbors[1] == [0, 2]
        assert lg.neighbors[2] == [1]

    def test_simulator_is_smaller_endpoint(self):
        lg = self.triangle()
        assert lg.simulator == [0, 0, 1]

    def test_max_degree_bound(self, small_regular_net):
        """Line-graph degree is at most 2*Delta - 2 (Lemma 8 setup)."""
        edges = small_regular_net.edges()
        lg = LineGraph.from_edges(edges)
        delta = small_regular_net.max_degree
        assert lg.max_degree() <= 2 * delta - 2

    def test_star_line_graph_is_clique(self):
        edges = [(0, v) for v in range(1, 5)]
        lg = LineGraph.from_edges(edges)
        assert lg.max_degree() == 3
        for adj in lg.neighbors:
            assert len(adj) == 3

    def test_index_and_membership_queries(self):
        lg = self.triangle()
        assert lg.index_of((0, 2)) == 1
        with pytest.raises(ProtocolError):
            lg.index_of((2, 3))
        assert lg.edges_simulated_by(0) == [0, 1]
        assert lg.incident_to(2) == [1, 2]

    def test_rejects_non_canonical(self):
        with pytest.raises(ProtocolError):
            LineGraph.from_edges([(1, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ProtocolError):
            LineGraph.from_edges([(0, 1), (0, 1)])

    def test_from_discovery_roundtrip(self):
        discovered = [{1, 2}, {0, 2}, {0, 1}]
        lg = LineGraph.from_discovery(discovered)
        assert lg.edges == [(0, 1), (0, 2), (1, 2)]
