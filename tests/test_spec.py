"""Unit tests for model specifications."""

import pytest

from repro.model import ModelKnowledge, NetworkSpec, SpecError, ceil_log2


class TestCeilLog2:
    def test_one_maps_to_one(self):
        assert ceil_log2(1) == 1

    def test_powers_of_two(self):
        assert ceil_log2(2) == 1
        assert ceil_log2(4) == 2
        assert ceil_log2(1024) == 10

    def test_rounds_up(self):
        assert ceil_log2(5) == 3
        assert ceil_log2(1000) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            ceil_log2(0)
        with pytest.raises(SpecError):
            ceil_log2(-3)


class TestNetworkSpec:
    def test_valid_spec(self):
        spec = NetworkSpec(n=10, c=8, k=2, kmax=4)
        assert spec.log_n == 4

    def test_rejects_tiny_network(self):
        with pytest.raises(SpecError):
            NetworkSpec(n=1, c=4, k=1, kmax=1)

    def test_rejects_no_channels(self):
        with pytest.raises(SpecError):
            NetworkSpec(n=4, c=0, k=1, kmax=1)

    def test_rejects_k_above_kmax(self):
        with pytest.raises(SpecError):
            NetworkSpec(n=4, c=8, k=5, kmax=4)

    def test_rejects_kmax_above_c(self):
        with pytest.raises(SpecError):
            NetworkSpec(n=4, c=4, k=2, kmax=5)

    def test_rejects_zero_k(self):
        with pytest.raises(SpecError):
            NetworkSpec(n=4, c=4, k=0, kmax=2)

    def test_knowledge_factory(self):
        spec = NetworkSpec(n=16, c=8, k=2, kmax=2)
        kn = spec.knowledge(max_degree=3, diameter=5)
        assert kn.n == 16
        assert kn.max_degree == 3
        assert kn.diameter == 5
        assert kn.spec == spec


class TestModelKnowledge:
    def make(self, **overrides):
        base = dict(n=16, c=8, k=2, kmax=4, max_degree=3, diameter=5)
        base.update(overrides)
        return ModelKnowledge(**base)

    def test_log_helpers(self):
        kn = self.make()
        assert kn.log_n == 4
        assert kn.log_delta == 2

    def test_log_delta_floor_one(self):
        kn = self.make(max_degree=1)
        assert kn.log_delta == 1

    def test_rejects_degree_above_n(self):
        with pytest.raises(SpecError):
            self.make(max_degree=16)

    def test_rejects_zero_degree(self):
        with pytest.raises(SpecError):
            self.make(max_degree=0)

    def test_rejects_zero_diameter(self):
        with pytest.raises(SpecError):
            self.make(diameter=0)

    def test_khat_validation(self):
        kn = self.make()
        assert kn.with_khat(3) is kn
        with pytest.raises(SpecError):
            kn.with_khat(1)
        with pytest.raises(SpecError):
            kn.with_khat(5)

    def test_spec_projection_roundtrip(self):
        kn = self.make()
        assert kn.spec == NetworkSpec(n=16, c=8, k=2, kmax=4)
