"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Three contracts, in order of importance:

1. **Determinism** — telemetry never touches RNG streams, so produced
   rows are byte-identical with it on or off, across executors.
2. **Merge algebra** — snapshots merge commutatively and associatively
   (integer-nanosecond aggregates), so pool completion order and
   streaming chunk order cannot change stored telemetry.
3. **Wiring** — the instrumented layers (engine, protocols, executors,
   campaigns, CLI) actually record, and the store/report/CLI surfaces
   render what was recorded without re-executing anything.
"""

import json

import pytest

from repro import obs
from repro.campaigns import (
    CampaignEntry,
    CampaignSpec,
    RunStore,
    run_campaign,
)
from repro.campaigns.report import campaign_report, diff_refs, telemetry_section
from repro.cli import main
from repro.harness import ParallelExecutor, SerialExecutor
from repro.harness.executor import StreamingExecutor
from repro.scenarios import run_scenario_spec

from tests.test_xbatch import tiny_cseek_sweep


def square(s):
    return s * s


def snap_with(counters=None, spans=None, gauges=None):
    snap = obs.empty_snapshot()
    snap["counters"] = dict(counters or {})
    snap["spans"] = {
        label: {"count": c, "total_ns": t, "max_ns": m}
        for label, (c, t, m) in (spans or {}).items()
    }
    snap["gauges"] = dict(gauges or {})
    return snap


class TestRecorder:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.active() is None
        # No recorder: count/gauge are no-ops, span is a shared no-op.
        obs.count("never.lands")
        obs.gauge_max("never.lands", 1.0)
        assert obs.span("discovery") is obs.span("gemm")
        with obs.span("discovery"):
            pass
        assert not obs.enabled()

    def test_capture_records(self):
        with obs.capture() as tel:
            obs.count("x", 2)
            obs.count("x")
            obs.gauge_max("g", 3.0)
            obs.gauge_max("g", 1.0)
            with obs.span("discovery"):
                with obs.span("gemm"):
                    pass
        snap = tel.snapshot()
        assert snap["counters"] == {"x": 3}
        assert snap["gauges"] == {"g": 3.0}
        assert snap["spans"]["discovery"]["count"] == 1
        assert snap["spans"]["gemm"]["count"] == 1
        # Nested span durations are independent clock reads; the outer
        # region contains the inner one.
        assert (
            snap["spans"]["discovery"]["total_ns"]
            >= snap["spans"]["gemm"]["total_ns"]
        )
        assert not obs.enabled()

    def test_stop_rolls_up_into_parent(self):
        with obs.capture() as outer:
            obs.count("outer.only")
            obs.start()
            obs.count("inner.only", 5)
            inner_snap = obs.stop()
        assert inner_snap["counters"] == {"inner.only": 5}
        snap = outer.snapshot()
        assert snap["counters"] == {"outer.only": 1, "inner.only": 5}

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            obs.stop()

    def test_trace_mode_keeps_events(self):
        with obs.capture(trace=True) as tel:
            with obs.span("discovery"):
                with obs.span("gemm"):
                    pass
        snap = tel.snapshot()
        events = snap["events"]
        assert {ev["label"] for ev in events} == {"discovery", "gemm"}
        depths = {ev["label"]: ev["depth"] for ev in events}
        assert depths == {"discovery": 0, "gemm": 1}

    def test_peak_rss_is_a_positive_int(self):
        rss = obs.peak_rss_kb()
        assert isinstance(rss, int) and rss > 0


class TestMergeAlgebra:
    A = snap_with(
        counters={"x": 1, "y": 2},
        spans={"gemm": (2, 100, 60)},
        gauges={"rss": 10.0},
    )
    B = snap_with(
        counters={"x": 3},
        spans={"gemm": (1, 40, 40), "chunk": (1, 7, 7)},
        gauges={"rss": 30.0, "other": 1.0},
    )
    C = snap_with(
        counters={"z": 5},
        spans={"chunk": (4, 13, 9)},
    )

    def test_commutative(self):
        assert obs.merge_snapshots(self.A, self.B) == obs.merge_snapshots(
            self.B, self.A
        )

    def test_associative(self):
        left = obs.merge_snapshots(
            obs.merge_snapshots(self.A, self.B), self.C
        )
        right = obs.merge_snapshots(
            self.A, obs.merge_snapshots(self.B, self.C)
        )
        assert left == right

    def test_expected_totals(self):
        merged = obs.merge_snapshots(self.A, self.B, self.C)
        assert merged["counters"] == {"x": 4, "y": 2, "z": 5}
        assert merged["spans"]["gemm"] == {
            "count": 3,
            "total_ns": 140,
            "max_ns": 60,
        }
        assert merged["spans"]["chunk"] == {
            "count": 5,
            "total_ns": 20,
            "max_ns": 9,
        }
        assert merged["gauges"] == {"rss": 30.0, "other": 1.0}

    def test_empty_is_identity(self):
        assert (
            obs.merge_snapshots(self.A, obs.empty_snapshot())
            == obs.merge_snapshots(self.A)
        )

    def test_none_snapshots_are_skipped(self):
        assert obs.merge_snapshots(None, self.A, None) == obs.merge_snapshots(
            self.A
        )

    def test_snapshots_are_json_ready(self):
        merged = obs.merge_snapshots(self.A, self.B)
        assert json.loads(json.dumps(merged)) == merged


class TestExecutorTelemetry:
    def test_serial_counts_trials(self):
        with obs.capture() as tel:
            SerialExecutor().run(square, [1, 2, 3])
        assert tel.counters["executor.trials"] == 3

    def test_parallel_ships_worker_snapshots(self):
        seeds = list(range(8))
        with obs.capture() as tel:
            got = ParallelExecutor(jobs=2).run(square, seeds)
        assert got == [s * s for s in seeds]
        snap = tel.snapshot()
        assert snap["counters"]["executor.trials"] == 8
        # Worker-side counters crossed the fork boundary and merged.
        assert snap["counters"]["worker.chunks"] >= 2
        assert snap["gauges"]["worker.peak_rss_kb"] > 0

    def test_streaming_records_chunk_spans(self):
        with obs.capture() as tel:
            StreamingExecutor(chunk_size=4, inner="serial").run(
                square, list(range(10))
            )
        snap = tel.snapshot()
        assert snap["counters"]["stream.chunks"] == 3
        assert snap["spans"]["chunk"]["count"] == 3

    def test_worker_snapshot_merge_is_order_independent(self):
        # Simulate two workers finishing in either order: the merged
        # aggregates must be identical (the commutativity contract the
        # pool's imap consumption relies on).
        w1 = snap_with(counters={"worker.chunks": 1, "executor.trials": 4})
        w2 = snap_with(counters={"worker.chunks": 1, "executor.trials": 3})
        assert obs.merge_snapshots(w1, w2) == obs.merge_snapshots(w2, w1)


class TestRowsUnchanged:
    """Telemetry on vs off: rows must be byte-identical."""

    @pytest.mark.parametrize("jobs", ["serial", "batch"])
    def test_rows_identical_with_telemetry(self, jobs):
        spec = tiny_cseek_sweep()
        reference = run_scenario_spec(spec, seed=3, jobs=jobs)
        with obs.capture() as tel:
            got = run_scenario_spec(spec, seed=3, jobs=jobs)
        assert got.rows == reference.rows
        # And telemetry actually recorded something meaningful.
        snap = tel.snapshot()
        assert snap["counters"]["executor.trials"] > 0
        assert "discovery" in snap["spans"]


def tel_campaign(name="tel-tiny"):
    return CampaignSpec(
        name=name,
        title="telemetry smoke study",
        entries=(
            CampaignEntry(
                scenario="count-interference",
                id="clean",
                overrides={
                    "sweep.axes.m": [2],
                    "sweep.axes.activity": [0.0, 0.5],
                },
                trials=4,
            ),
        ),
    )


class TestCampaignTelemetry:
    def test_entry_manifest_gets_vitals_and_telemetry(self, tmp_path):
        run_campaign(
            tel_campaign(),
            store=tmp_path,
            jobs="batch",
            telemetry="json",
            log=lambda _: None,
        )
        run = RunStore(tmp_path).latest_run("tel-tiny")
        manifest = run.entry_manifest("clean")
        vitals = manifest["vitals"]
        assert vitals["backend"] == "numpy"
        assert vitals["peak_rss_kb"] > 0
        assert vitals["wall_time"] >= 0
        snap = manifest["telemetry"]
        assert snap["counters"]["executor.trials"] > 0
        assert snap["spans"]
        # The campaign manifest rolls entries up.
        campaign_manifest = run.manifest()
        assert campaign_manifest["telemetry"]["counters"][
            "executor.trials"
        ] == snap["counters"]["executor.trials"]

    def test_vitals_always_on_telemetry_opt_in(self, tmp_path):
        run_campaign(
            tel_campaign("tel-off"),
            store=tmp_path,
            jobs="batch",
            log=lambda _: None,
        )
        run = RunStore(tmp_path).latest_run("tel-off")
        manifest = run.entry_manifest("clean")
        assert manifest["vitals"]["peak_rss_kb"] > 0
        assert "telemetry" not in manifest
        assert telemetry_section(run) is None

    def test_report_renders_telemetry_section(self, tmp_path):
        run_campaign(
            tel_campaign(),
            store=tmp_path,
            jobs="batch",
            telemetry="json",
            log=lambda _: None,
        )
        run = RunStore(tmp_path).latest_run("tel-tiny")
        report = campaign_report(run)
        assert "## Telemetry" in report
        assert "executor.trials" in report

    def test_bad_telemetry_mode_rejected(self, tmp_path):
        from repro.model.errors import HarnessError

        with pytest.raises(HarnessError, match="telemetry"):
            run_campaign(
                tel_campaign(),
                store=tmp_path,
                telemetry="xml",
                log=lambda _: None,
            )

    def test_diff_appends_informational_stage_table(self, tmp_path):
        run_campaign(
            tel_campaign(),
            store=tmp_path,
            jobs="batch",
            telemetry="json",
            log=lambda _: None,
        )
        store = RunStore(tmp_path)
        ref = "tel-tiny:clean"
        markdown, identical = diff_refs(store, ref, ref)
        # Same entry against itself: rows identical, and the verdict
        # must stay identical even though the stage table is present.
        assert identical
        assert "Telemetry stages" in markdown


class TestCli:
    def test_telemetry_command_renders_store(self, tmp_path, capsys):
        run_campaign(
            tel_campaign(),
            store=tmp_path,
            jobs="batch",
            telemetry="json",
            log=lambda _: None,
        )
        out_dir = tmp_path / "tel"
        code = main(
            [
                "telemetry",
                "tel-tiny",
                "--store",
                str(tmp_path),
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "# Telemetry — tel-tiny@" in printed
        assert (out_dir / "telemetry.md").exists()
        trace = json.loads((out_dir / "trace.json").read_text())
        assert trace["traceEvents"]

    def test_telemetry_command_without_recording_fails_cleanly(
        self, tmp_path, capsys
    ):
        run_campaign(
            tel_campaign("tel-off"),
            store=tmp_path,
            jobs="batch",
            log=lambda _: None,
        )
        code = main(["telemetry", "tel-off", "--store", str(tmp_path)])
        assert code == 1
        assert "no stored telemetry" in capsys.readouterr().err

    def test_run_scenario_flag_prints_breakdown(self, capsys):
        code = main(
            [
                "run-scenario",
                "count-interference",
                "--trials",
                "2",
                "--set",
                "sweep.axes.m=[2]",
                "--set",
                "sweep.axes.activity=[0.5]",
                "--jobs",
                "batch",
                "--telemetry",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "## Telemetry" in printed
        assert "executor.trials" in printed
        assert not obs.enabled()


class TestExport:
    def test_stage_rows_canonical_order_and_shares(self):
        snap = snap_with(
            spans={
                "zz-custom": (1, 100, 100),
                "gemm": (2, 300, 200),
                "discovery": (1, 600, 600),
            }
        )
        rows = obs.stage_rows(snap)
        assert [r["stage"] for r in rows] == ["discovery", "gemm", "zz-custom"]
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        assert rows[0]["total_s"] == pytest.approx(600 / 1e9)

    def test_render_handles_empty_snapshot(self):
        assert "(no spans recorded)" in obs.render_telemetry(
            obs.empty_snapshot()
        )

    def test_chrome_trace_prefers_raw_events(self):
        with obs.capture(trace=True) as tel:
            with obs.span("discovery"):
                pass
        events = obs.chrome_trace_events(tel.snapshot())
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert complete and complete[0]["name"] == "discovery"
        assert "synthetic" not in complete[0]["args"]

    def test_chrome_trace_synthesizes_from_aggregates(self):
        snap = snap_with(spans={"gemm": (3, 2_000_000, 900_000)})
        events = obs.chrome_trace_events(snap)
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert complete[0]["args"]["synthetic"] is True
        assert complete[0]["dur"] == pytest.approx(2_000.0)

    def test_write_chrome_trace_one_process_per_snapshot(self, tmp_path):
        snap = snap_with(spans={"gemm": (1, 10, 10)})
        path = obs.write_chrome_trace(
            tmp_path / "trace.json", [("a", snap), ("b", snap)]
        )
        trace = json.loads(path.read_text())
        pids = {ev["pid"] for ev in trace["traceEvents"]}
        assert pids == {0, 1}
