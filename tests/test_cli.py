"""Unit tests for the CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert args.trials is None
        assert args.seed == 0
        assert args.out is None

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "E7", "--trials", "3", "--seed", "9", "--out", "o"]
        )
        assert args.trials == 3
        assert args.seed == 9
        assert args.out == "o"
        assert args.jobs is None
        assert args.cache is False

    def test_jobs_accepts_ints_and_strategy_names(self):
        parse = build_parser().parse_args
        assert parse(["run", "E1", "--jobs", "4"]).jobs == 4
        assert parse(["run", "E1", "--jobs", "batch"]).jobs == "batch"
        assert parse(["run", "E1", "--jobs", "serial"]).jobs == "serial"

    def test_jobs_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--jobs", "fast"])

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "E1", "--cache", "--cache-dir", "c"]
        )
        assert args.cache is True
        assert args.cache_dir == "c"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == [f"E{i}" for i in range(1, 13)]

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.integration
    def test_run_e1_with_output(self, tmp_path, capsys):
        code = main(
            ["run", "E1", "--trials", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "e1.md").exists()
        assert (tmp_path / "e1.csv").exists()
        out = capsys.readouterr().out
        assert "COUNT accuracy" in out

    def test_scenarios_lists_paper_and_stock(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 13):
            assert f"E{i} " in out or f"E{i}  " in out
        assert "[paper]" in out
        assert "[stock]" in out
        assert "pu-geo-cseek" in out
        assert "count-interference" in out

    def test_run_scenario_with_overrides(self, capsys):
        code = main(
            [
                "run-scenario",
                "count-interference",
                "--trials",
                "2",
                "--jobs",
                "batch",
                "--set",
                "sweep.axes.m=[2]",
                "--set",
                "sweep.axes.activity=[0.0]",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "COUNT accuracy under primary-user interference" in out
        assert "median_ratio" in out

    def test_run_scenario_from_file(self, tmp_path, capsys):
        payload = {
            "name": "from-file",
            "title": "file scenario",
            "trials": 2,
            "sweep": {"axes": {"m": [1, 2]}},
            "protocol": {
                "kind": "count",
                "params": {"m": "$m", "max_count": 4, "log_n": 3},
            },
        }
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(payload))
        out_dir = tmp_path / "out"
        code = main(
            ["run-scenario", str(path), "--out", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "from-file.md").exists()
        assert (out_dir / "from-file.csv").exists()
        assert "file scenario" in capsys.readouterr().out

    def test_run_scenario_precision_flags(self, capsys):
        code = main(
            [
                "run-scenario",
                "count-interference",
                "--set",
                "sweep.axes.m=[2]",
                "--set",
                "sweep.axes.activity=[0.0]",
                "--precision",
                "band_rate=±0.5",
                "--min-trials",
                "8",
                "--max-trials",
                "64",
                "--chunk",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "ci_band_rate" in out

    def test_run_scenario_rejects_bad_precision_flag(self, capsys):
        code = main(
            [
                "run-scenario",
                "count-interference",
                "--precision",
                "band_rate",
            ]
        )
        assert code == 1
        assert "METRIC=HALFWIDTH" in capsys.readouterr().err

    def test_run_scenario_rejects_unknown_name(self, capsys):
        assert main(["run-scenario", "no-such-workload"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_scenario_rejects_bad_set_syntax(self, capsys):
        code = main(
            ["run-scenario", "count-interference", "--set", "oops"]
        )
        assert code == 1
        assert "PATH=VALUE" in capsys.readouterr().err

    def test_run_scenario_rejects_bad_override_path(self, capsys):
        code = main(
            [
                "run-scenario",
                "count-interference",
                "--set",
                "nope.nope=1",
            ]
        )
        assert code == 1
        assert "unknown scenario keys" in capsys.readouterr().err

    @pytest.mark.integration
    def test_run_with_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "run",
            "E1",
            "--trials",
            "2",
            "--jobs",
            "2",
            "--cache",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(argv) == 0
        assert list(cache_dir.glob("e1-*.json"))
        first = capsys.readouterr().out
        # Second invocation replays from the cache.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]


class TestCampaignCommands:
    def test_parser_accepts_campaign_options(self):
        args = build_parser().parse_args(
            [
                "run-campaign",
                "tiny.json",
                "--trials",
                "2",
                "--campaign-jobs",
                "3",
                "--jobs",
                "batch",
                "--store",
                "s",
            ]
        )
        assert args.campaign == "tiny.json"
        assert args.trials == 2
        assert args.campaign_jobs == 3
        assert args.jobs == "batch"
        assert args.store == "s"
        assert args.seed is None  # campaign default applies

    def test_campaigns_lists_stock_studies(self, capsys):
        assert main(["campaigns"]) == 0
        out = capsys.readouterr().out
        assert "paper-suite" in out
        assert "traffic-models" in out

    def test_run_campaign_report_and_diff_flow(self, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            [
                "run-campaign",
                "examples/campaigns/tiny_suite.json",
                "--jobs",
                "batch",
                "--store",
                str(store),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[1/2] counts-clean: done" in out
        assert "2 ran, 0 cached" in out

        # Resume: everything replays from the store.
        assert (
            main(
                [
                    "run-campaign",
                    "examples/campaigns/tiny_suite.json",
                    "--store",
                    str(store),
                ]
            )
            == 0
        )
        assert "2 cached" in capsys.readouterr().out

        out_dir = tmp_path / "report"
        code = main(
            [
                "report",
                "tiny-suite",
                "--store",
                str(store),
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert "# Campaign report — tiny-suite" in capsys.readouterr().out
        assert (out_dir / "report.md").exists()
        assert (out_dir / "summary.csv").exists()

        # Self-diff: identical (exit 0); cross-entry diff: differs (1).
        assert (
            main(
                ["diff-runs", "tiny-suite", "tiny-suite",
                 "--store", str(store)]
            )
            == 0
        )
        assert "identical" in capsys.readouterr().out
        assert (
            main(
                [
                    "diff-runs",
                    "tiny-suite:counts-clean",
                    "tiny-suite:counts-noisy",
                    "--store",
                    str(store),
                ]
            )
            == 1
        )
        assert "runs differ" in capsys.readouterr().out

    def test_run_campaign_unknown_name_fails(self, capsys):
        assert main(["run-campaign", "no-such-study"]) == 1
        assert "unknown campaign" in capsys.readouterr().err

    def test_report_without_store_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["report", "paper-suite", "--store", str(tmp_path)]
        )
        assert code == 1
        assert "no stored runs" in capsys.readouterr().err

    def test_diff_runs_trouble_exit_code(self, tmp_path, capsys):
        code = main(
            ["diff-runs", "ghost", "ghost", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "no stored runs" in capsys.readouterr().err

    def test_report_entry_ref_prints_single_entry(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "run-campaign",
                    "examples/campaigns/tiny_suite.json",
                    "--jobs",
                    "batch",
                    "--store",
                    str(store),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "report",
                "tiny-suite:counts-clean",
                "--store",
                str(store),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# Entry report — tiny-suite@" in out
        assert "counts-clean" in out
        assert "counts-noisy" not in out

    def test_diff_runs_handles_corrupt_store_without_traceback(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert (
            main(
                [
                    "run-campaign",
                    "examples/campaigns/tiny_suite.json",
                    "--jobs",
                    "batch",
                    "--store",
                    str(store),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # A structurally-wrong rows.json (valid JSON, rows not a list
        # of dicts) behind a "done" manifest is store corruption: the
        # diff must exit 2 with a clean error, not crash and not
        # masquerade as "runs differ" (exit 1).
        rows = next(store.rglob("counts-clean/rows.json"))
        payload = json.loads(rows.read_text())
        payload["rows"] = 42  # not even iterable
        rows.write_text(json.dumps(payload))
        code = main(
            [
                "diff-runs",
                "tiny-suite:counts-clean",
                "tiny-suite:counts-noisy",
                "--store",
                str(store),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "marked done" in err
        assert "Traceback" not in err

        # report on the same corrupted store: also exit 2, also clean.
        assert (
            main(["report", "tiny-suite", "--store", str(store)]) == 2
        )
        err = capsys.readouterr().err
        assert "marked done" in err

        # An empty rows list behind a done manifest is equally corrupt.
        payload["rows"] = []
        rows.write_text(json.dumps(payload))
        assert (
            main(
                [
                    "report",
                    "tiny-suite:counts-clean",
                    "--store",
                    str(store),
                ]
            )
            == 2
        )
        assert "marked done" in capsys.readouterr().err
