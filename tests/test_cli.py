"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert args.trials is None
        assert args.seed == 0
        assert args.out is None

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "E7", "--trials", "3", "--seed", "9", "--out", "o"]
        )
        assert args.trials == 3
        assert args.seed == 9
        assert args.out == "o"
        assert args.jobs is None
        assert args.cache is False

    def test_jobs_accepts_ints_and_strategy_names(self):
        parse = build_parser().parse_args
        assert parse(["run", "E1", "--jobs", "4"]).jobs == 4
        assert parse(["run", "E1", "--jobs", "batch"]).jobs == "batch"
        assert parse(["run", "E1", "--jobs", "serial"]).jobs == "serial"

    def test_jobs_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--jobs", "fast"])

    def test_cache_flags(self):
        args = build_parser().parse_args(
            ["run", "E1", "--cache", "--cache-dir", "c"]
        )
        assert args.cache is True
        assert args.cache_dir == "c"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == [f"E{i}" for i in range(1, 13)]

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "E99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.integration
    def test_run_e1_with_output(self, tmp_path, capsys):
        code = main(
            ["run", "E1", "--trials", "2", "--out", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "e1.md").exists()
        assert (tmp_path / "e1.csv").exists()
        out = capsys.readouterr().out
        assert "COUNT accuracy" in out

    @pytest.mark.integration
    def test_run_with_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = [
            "run",
            "E1",
            "--trials",
            "2",
            "--jobs",
            "2",
            "--cache",
            "--cache-dir",
            str(cache_dir),
        ]
        assert main(argv) == 0
        assert list(cache_dir.glob("e1-*.json"))
        first = capsys.readouterr().out
        # Second invocation replays from the cache.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[0] == second.splitlines()[0]
