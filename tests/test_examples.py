"""The example scripts must run end-to-end and exit cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3


@pytest.mark.integration
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script):
    proc = subprocess.run(
        [sys.executable, str(script), "0"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.strip(), "examples should narrate their run"
