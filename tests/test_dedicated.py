"""Unit tests for dedicated-channel agreement."""

import pytest

from repro.core import (
    CSeek,
    agree_dedicated_channels,
    first_heard_payloads,
    oracle_exchange,
)
from repro.model import ProtocolError


def run_discovery_and_exchange(net, seed=0):
    result = CSeek(net, seed=seed).run()
    payloads = first_heard_payloads(result)
    received = oracle_exchange(
        result.discovered,
        payloads,
        net.knowledge(),
        CSeek(net, seed=seed).constants,
    )
    return result, received


class TestFirstHeardPayloads:
    def test_payload_contents(self, small_path_net):
        result = CSeek(small_path_net, seed=1).run()
        payloads = first_heard_payloads(result)
        for u, payload in enumerate(payloads):
            for v, slot in payload.items():
                event = result.trace.first_reception(u, v)
                assert event is not None
                assert event.slot == slot


class TestAgreement:
    def test_channels_are_shared_by_the_pair(self, small_path_net):
        net = small_path_net
        result, received = run_discovery_and_exchange(net, seed=2)
        edges = net.edges()
        dedicated = agree_dedicated_channels(result, edges, received)
        assert set(dedicated) == set(edges)
        for (u, v), channel in dedicated.items():
            assert channel in net.shared_channels(u, v)

    def test_agreement_deterministic(self, small_path_net):
        net = small_path_net
        r1, rx1 = run_discovery_and_exchange(net, seed=3)
        r2, rx2 = run_discovery_and_exchange(net, seed=3)
        edges = net.edges()
        assert agree_dedicated_channels(
            r1, edges, rx1
        ) == agree_dedicated_channels(r2, edges, rx2)

    def test_rejects_non_canonical_edges(self, small_path_net):
        result, received = run_discovery_and_exchange(small_path_net, seed=4)
        with pytest.raises(ProtocolError):
            agree_dedicated_channels(result, [(1, 0)], received)

    def test_rejects_unmet_pair(self, small_path_net):
        net = small_path_net
        # Empty discovery: no meetings recorded at all.
        result = CSeek(net, seed=5, part1_steps=0, part2_steps=0).run()
        received = [{} for _ in range(net.n)]
        with pytest.raises(ProtocolError, match="no usable meeting"):
            agree_dedicated_channels(result, net.edges(), received)

    def test_works_on_regular_network(self, small_regular_net):
        net = small_regular_net
        result, received = run_discovery_and_exchange(net, seed=6)
        dedicated = agree_dedicated_channels(result, net.edges(), received)
        for (u, v), channel in dedicated.items():
            assert channel in net.shared_channels(u, v)
