"""Unit tests for primary-user interference and jam-aware resolution."""

import numpy as np
import pytest

from repro.core import CSeek, verify_discovery
from repro.model import ProtocolError
from repro.sim import PrimaryUserTraffic, resolve_step


class TestPrimaryUserTraffic:
    def test_rejects_bad_params(self):
        with pytest.raises(ProtocolError):
            PrimaryUserTraffic([0, 1], activity=1.0)
        with pytest.raises(ProtocolError):
            PrimaryUserTraffic([0, 1], activity=-0.1)
        with pytest.raises(ProtocolError):
            PrimaryUserTraffic([0, 1], activity=0.5, mean_dwell=0.5)
        with pytest.raises(ProtocolError):
            PrimaryUserTraffic([], activity=0.5)
        with pytest.raises(ProtocolError):
            PrimaryUserTraffic([-1], activity=0.5)

    def test_zero_activity_never_occupies(self):
        traffic = PrimaryUserTraffic([0, 1, 2], activity=0.0, seed=1)
        assert not traffic.occupied_block(200).any()

    def test_stationary_occupancy_near_target(self):
        traffic = PrimaryUserTraffic(
            list(range(20)), activity=0.4, mean_dwell=5.0, seed=2
        )
        block = traffic.occupied_block(4000)
        assert 0.3 <= block.mean() <= 0.5

    def test_bursts_have_requested_dwell(self):
        traffic = PrimaryUserTraffic([0], activity=0.3, mean_dwell=10.0, seed=3)
        series = traffic.occupied_block(20000)[:, 0]
        # Mean run length of ON bursts should be near mean_dwell.
        runs = []
        current = 0
        for on in series:
            if on:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some ON bursts"
        mean_run = float(np.mean(runs))
        assert 5.0 <= mean_run <= 20.0

    def test_sequential_blocks_advance_state(self):
        t1 = PrimaryUserTraffic([0, 1], activity=0.5, seed=4)
        a = t1.occupied_block(50)
        b = t1.occupied_block(50)
        t2 = PrimaryUserTraffic([0, 1], activity=0.5, seed=4)
        c = t2.occupied_block(100)
        assert np.array_equal(np.vstack([a, b]), c)

    @pytest.mark.parametrize(
        "activity,mean_dwell",
        [(0.1, 1.5), (0.4, 2.0), (0.55, 1.5), (0.7, 8.0), (0.85, 8.0)],
    )
    def test_stationary_occupancy_converges_to_activity(
        self, activity, mean_dwell
    ):
        # The chains start at stationarity and must stay there: for
        # feasible targets (activity <= dwell / (dwell + 1)) the
        # long-run occupied fraction converges to the activity target
        # across the (activity, dwell) grid, not just one point.
        traffic = PrimaryUserTraffic(
            list(range(16)),
            activity=activity,
            mean_dwell=mean_dwell,
            seed=int(activity * 100) + int(mean_dwell),
        )
        assert traffic.realized_activity == pytest.approx(activity)
        block = traffic.occupied_block(6000)
        assert abs(block.mean() - activity) < 0.05

    def test_infeasible_targets_saturate_at_the_dwell_cap(self):
        # activity > dwell / (dwell + 1) cannot be reached with
        # geometric ON bursts of that mean: the OFF->ON probability
        # clamps at 1 and occupancy plateaus at the cap.
        traffic = PrimaryUserTraffic(
            list(range(16)), activity=0.9, mean_dwell=1.5, seed=8
        )
        cap = 1.5 / 2.5
        assert traffic.realized_activity == pytest.approx(cap)
        block = traffic.occupied_block(6000)
        assert abs(block.mean() - cap) < 0.05

    def test_chunked_consumption_bit_identical_to_one_shot(self):
        # Protocol executions consume occupancy slot by slot in uneven
        # step-sized chunks; the sequence must be exactly the one a
        # single generation from the same seed produces.
        chunks = [1, 7, 64, 3, 1, 100, 24]
        total = sum(chunks)
        chunked = PrimaryUserTraffic(
            [2, 5, 9], activity=0.35, mean_dwell=6.0, seed=13
        )
        parts = [chunked.occupied_block(size) for size in chunks]
        one_shot = PrimaryUserTraffic(
            [2, 5, 9], activity=0.35, mean_dwell=6.0, seed=13
        ).occupied_block(total)
        assert np.array_equal(np.vstack(parts), one_shot)

    def test_chunked_jam_masks_bit_identical_to_one_shot(self):
        # The jam_mask view (what the engine actually consumes) must
        # inherit the same chunking invariance.
        channels = np.array([2, 9, -1, 5])
        chunks = [5, 1, 30, 14]
        chunked = PrimaryUserTraffic(
            [2, 5, 9], activity=0.5, mean_dwell=3.0, seed=21
        )
        parts = [chunked.jam_mask(channels, size) for size in chunks]
        one_shot = PrimaryUserTraffic(
            [2, 5, 9], activity=0.5, mean_dwell=3.0, seed=21
        ).jam_mask(channels, sum(chunks))
        assert np.array_equal(np.vstack(parts), one_shot)

    def test_jam_mask_covers_tuned_channels_only(self):
        traffic = PrimaryUserTraffic([5], activity=0.9, mean_dwell=2.0, seed=5)
        channels = np.array([5, 7, -1])
        mask = traffic.jam_mask(channels, 300)
        assert mask[:, 0].mean() > 0.3  # channel 5 is managed
        assert not mask[:, 1].any()  # channel 7 is outside the set
        assert not mask[:, 2].any()  # idle node never jammed

    def test_jam_mask_rejects_bad_slots(self):
        traffic = PrimaryUserTraffic([0], activity=0.1)
        with pytest.raises(ProtocolError):
            traffic.occupied_block(0)


class TestJamAwareEngine:
    def test_full_jam_silences_reception(self):
        adj = np.array([[False, True], [True, False]])
        channels = np.array([3, 3])
        tx_role = np.array([True, False])
        coins = np.ones((5, 2), dtype=bool)
        jam = np.ones((5, 2), dtype=bool)
        out = resolve_step(adj, channels, tx_role, coins, jam=jam)
        assert (out.heard_from == -1).all()

    def test_partial_jam_kills_exact_slots(self):
        adj = np.array([[False, True], [True, False]])
        channels = np.array([3, 3])
        tx_role = np.array([True, False])
        coins = np.ones((4, 2), dtype=bool)
        jam = np.zeros((4, 2), dtype=bool)
        jam[1, 1] = True
        out = resolve_step(adj, channels, tx_role, coins, jam=jam)
        assert out.heard_from[0, 1] == 0
        assert out.heard_from[1, 1] == -1
        assert out.heard_from[2, 1] == 0

    def test_jam_shape_validated(self):
        adj = np.array([[False, True], [True, False]])
        with pytest.raises(ProtocolError):
            resolve_step(
                adj,
                np.array([1, 1]),
                np.array([True, False]),
                np.ones((3, 2), dtype=bool),
                jam=np.ones((2, 2), dtype=bool),
            )


class TestCSeekUnderInterference:
    @pytest.mark.integration
    def test_short_bursts_are_absorbed(self, small_regular_net):
        net = small_regular_net
        traffic = PrimaryUserTraffic(
            sorted(net.assignment.universe()),
            activity=0.3,
            mean_dwell=4.0,
            seed=7,
        )
        result = CSeek(net, seed=1, jammer=traffic).run()
        assert verify_discovery(result, net).success

    @pytest.mark.integration
    def test_heavy_long_bursts_break_discovery(self, small_regular_net):
        net = small_regular_net
        failures = 0
        for s in range(3):
            traffic = PrimaryUserTraffic(
                sorted(net.assignment.universe()),
                activity=0.9,
                mean_dwell=2000.0,
                seed=s,
            )
            result = CSeek(net, seed=s, jammer=traffic).run()
            if not verify_discovery(result, net).success:
                failures += 1
        assert failures > 0
