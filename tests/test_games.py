"""Unit tests for the hitting games and players (Lemmas 10 and 12)."""

import numpy as np
import pytest

from repro.lowerbounds import (
    FreshRandomPlayer,
    HittingGame,
    SweepPlayer,
    UniformRandomPlayer,
    play,
)
from repro.model import GameError


class TestHittingGame:
    def test_matching_is_valid(self):
        game = HittingGame(c=10, k=4, seed=1)
        matching = game.reveal_matching()
        assert len(matching) == 4
        assert len(set(matching.values())) == 4
        assert all(0 <= a < 10 for a in matching)
        assert all(0 <= b < 10 for b in matching.values())

    def test_complete_game_is_perfect_matching(self):
        game = HittingGame(c=6, k=6, seed=2)
        matching = game.reveal_matching()
        assert sorted(matching) == list(range(6))
        assert sorted(matching.values()) == list(range(6))

    def test_propose_hit_and_miss(self):
        game = HittingGame(c=5, k=5, seed=3)
        matching = game.reveal_matching()
        a = 0
        b_hit = matching[a]
        b_miss = (b_hit + 1) % 5
        assert not game.propose(a, b_miss)
        assert game.propose(a, b_hit)
        assert game.won
        assert game.rounds_played == 2

    def test_no_proposals_after_win(self):
        game = HittingGame(c=3, k=3, seed=4)
        matching = game.reveal_matching()
        game.propose(0, matching[0])
        with pytest.raises(GameError):
            game.propose(1, 1)

    def test_rejects_out_of_range(self):
        game = HittingGame(c=3, k=1, seed=5)
        with pytest.raises(GameError):
            game.propose(3, 0)
        with pytest.raises(GameError):
            game.propose(0, -1)

    def test_rejects_bad_params(self):
        with pytest.raises(GameError):
            HittingGame(c=0, k=1)
        with pytest.raises(GameError):
            HittingGame(c=4, k=5)
        with pytest.raises(GameError):
            HittingGame(c=4, k=0)

    def test_determinism(self):
        m1 = HittingGame(c=8, k=3, seed=6).reveal_matching()
        m2 = HittingGame(c=8, k=3, seed=6).reveal_matching()
        assert m1 == m2


class TestPlayers:
    def test_sweep_always_wins_within_c_squared(self):
        for seed in range(5):
            game = HittingGame(c=6, k=2, seed=seed)
            transcript = play(game, SweepPlayer())
            assert transcript.won
            assert transcript.rounds <= 36

    def test_fresh_player_covers_all_edges(self):
        seen = set(FreshRandomPlayer(seed=1).proposals(4))
        assert len(seen) == 16

    def test_fresh_player_always_wins(self):
        for seed in range(5):
            game = HittingGame(c=8, k=1, seed=seed)
            transcript = play(game, FreshRandomPlayer(seed=seed + 100))
            assert transcript.won

    def test_uniform_player_wins_whp(self):
        wins = 0
        for seed in range(10):
            game = HittingGame(c=6, k=3, seed=seed)
            transcript = play(
                game, UniformRandomPlayer(seed=seed + 50), max_rounds=2000
            )
            wins += transcript.won
        assert wins >= 9

    def test_play_requires_fresh_game(self):
        game = HittingGame(c=4, k=2, seed=7)
        game.propose(0, 0)
        with pytest.raises(GameError):
            play(game, SweepPlayer())

    def test_round_cap_respected(self):
        game = HittingGame(c=20, k=1, seed=8)
        transcript = play(game, UniformRandomPlayer(seed=9), max_rounds=3)
        assert transcript.rounds <= 3

    def test_fresh_player_mean_near_theory(self):
        """E[rounds] for sampling without replacement is
        (c^2 + 1) / (k + 1); check within 30% over trials."""
        c, k = 10, 4
        expected = (c * c + 1) / (k + 1)
        rounds = []
        for seed in range(60):
            game = HittingGame(c=c, k=k, seed=seed)
            transcript = play(game, FreshRandomPlayer(seed=seed + 1000))
            rounds.append(transcript.rounds)
        mean = float(np.mean(rounds))
        assert expected * 0.7 <= mean <= expected * 1.3
