"""Unit tests for channel-assignment generators."""

import numpy as np
import pytest

from repro.graphs import (
    cycle,
    exact_uniform,
    global_core,
    grid,
    heterogeneous_overlaps,
    max_feasible_uniform_overlap,
    path,
    per_edge_overlaps,
    random_subsets,
    star,
)
from repro.model import AssignmentError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestPerEdgeOverlaps:
    def test_exact_targets(self, rng):
        g = path(4)
        targets = {(0, 1): 2, (1, 2): 3, (2, 3): 1}
        a = per_edge_overlaps(g, c=6, targets=targets, rng=rng)
        assert a.overlap_size(0, 1) == 2
        assert a.overlap_size(1, 2) == 3
        assert a.overlap_size(2, 3) == 1

    def test_non_adjacent_share_nothing(self, rng):
        g = path(4)
        a = per_edge_overlaps(
            g, c=6, targets={e: 2 for e in g.edges()}, rng=rng
        )
        assert a.overlap_size(0, 2) == 0
        assert a.overlap_size(0, 3) == 0

    def test_every_node_has_c_channels(self, rng):
        g = cycle(5)
        a = per_edge_overlaps(
            g, c=7, targets={e: 2 for e in g.edges()}, rng=rng
        )
        assert a.c == 7

    def test_reversed_edge_keys_accepted(self, rng):
        g = path(3)
        a = per_edge_overlaps(
            g, c=4, targets={(1, 0): 1, (2, 1): 1}, rng=rng
        )
        assert a.overlap_size(0, 1) == 1

    def test_missing_target_errors(self, rng):
        g = path(3)
        with pytest.raises(AssignmentError, match="no overlap target"):
            per_edge_overlaps(g, c=4, targets={(0, 1): 1}, rng=rng)

    def test_zero_target_errors(self, rng):
        g = path(3)
        with pytest.raises(AssignmentError, match=">= 1"):
            per_edge_overlaps(
                g, c=4, targets={(0, 1): 0, (1, 2): 1}, rng=rng
            )

    def test_infeasible_budget_errors(self, rng):
        g = star(5)  # hub degree 4
        with pytest.raises(AssignmentError, match="only c="):
            per_edge_overlaps(
                g, c=3, targets={e: 1 for e in g.edges()}, rng=rng
            )


class TestExactUniform:
    def test_all_edges_share_k(self, rng):
        g = grid(3, 3)
        a = exact_uniform(g, c=9, k=2, rng=rng)
        for u, v in g.edges():
            assert a.overlap_size(u, v) == 2

    def test_feasibility_helper(self):
        g = star(5)
        assert max_feasible_uniform_overlap(g, c=8) == 2

    def test_feasibility_helper_rejects_edgeless(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0)
        with pytest.raises(AssignmentError):
            max_feasible_uniform_overlap(g, c=4)


class TestHeterogeneous:
    def test_overlaps_are_k_or_kmax(self, rng):
        g = cycle(8)
        a = heterogeneous_overlaps(
            g, c=10, k=1, kmax=3, rng=rng, high_fraction=0.5
        )
        sizes = sorted({a.overlap_size(u, v) for u, v in g.edges()})
        assert sizes == [1, 3]

    def test_fraction_extremes(self, rng):
        g = cycle(6)
        a = heterogeneous_overlaps(
            g, c=8, k=1, kmax=2, rng=rng, high_fraction=1.0
        )
        assert all(a.overlap_size(u, v) == 2 for u, v in g.edges())

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(AssignmentError):
            heterogeneous_overlaps(
                cycle(6), c=8, k=1, kmax=2, rng=rng, high_fraction=1.5
            )

    def test_rejects_k_above_kmax(self, rng):
        with pytest.raises(AssignmentError):
            heterogeneous_overlaps(cycle(6), c=8, k=3, kmax=2, rng=rng)


class TestGlobalCore:
    def test_all_pairs_share_core(self, rng):
        g = star(6)
        a = global_core(g, c=5, k=2, rng=rng)
        for u in range(1, 6):
            assert a.overlap_size(0, u) == 2
        # Even non-adjacent leaves share exactly the core.
        assert a.overlap_size(1, 2) == 2

    def test_core_channels_are_crowded(self, rng):
        g = star(6)
        a = global_core(g, c=5, k=2, rng=rng)
        members = a.membership_map()
        crowded = [ch for ch, nodes in members.items() if len(nodes) == 6]
        assert len(crowded) == 2

    def test_rejects_core_above_c(self, rng):
        with pytest.raises(AssignmentError):
            global_core(star(4), c=3, k=4, rng=rng)


class TestRandomSubsets:
    def test_shapes(self, rng):
        a = random_subsets(10, c=6, pool_size=20, rng=rng)
        assert a.n == 10
        assert a.c == 6
        assert a.universe() <= frozenset(range(20))

    def test_rejects_small_pool(self, rng):
        with pytest.raises(AssignmentError):
            random_subsets(5, c=10, pool_size=6, rng=rng)
