"""Unit tests for the color-scheduled dissemination stage."""

import pytest

from repro.core import (
    CSeek,
    LineGraph,
    LubyEdgeColoring,
    agree_dedicated_channels,
    first_heard_payloads,
    oracle_exchange,
    run_dissemination,
)
from repro.model import ProtocolError


def prepared_stage(net, seed=0):
    """Discovery + coloring + dedicated channels for a network."""
    result = CSeek(net, seed=seed).run()
    received = oracle_exchange(
        result.discovered,
        first_heard_payloads(result),
        net.knowledge(),
        CSeek(net, seed=seed).constants,
    )
    edges = net.edges()
    dedicated = agree_dedicated_channels(result, edges, received)
    coloring = LubyEdgeColoring(
        LineGraph.from_edges(edges), net.knowledge(), seed=seed
    ).run()
    return coloring.colors, dedicated


class TestDissemination:
    def test_full_delivery_on_path(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=1)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=1
        )
        assert result.success
        assert result.informed_slot[0] == 0
        assert (result.informed_slot >= 0).all()

    def test_full_delivery_on_clique_chain(self, clique_chain_net):
        colors, dedicated = prepared_stage(clique_chain_net, seed=2)
        result = run_dissemination(
            clique_chain_net, 0, colors, dedicated, seed=2
        )
        assert result.success

    def test_informed_slots_increase_with_distance(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=3)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=3
        )
        slots = result.informed_slot
        # On a path from node 0, farther nodes are informed no earlier
        # (ties possible: a neighbor of the source can be informed in the
        # very first slot, matching the source's conventional slot 0).
        assert all(slots[i] <= slots[i + 1] for i in range(len(slots) - 1))

    def test_early_stop_saves_slots(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=4)
        eager = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=4, early_stop=True
        )
        full = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=4, early_stop=False
        )
        assert eager.ledger.total <= full.ledger.total
        assert full.ledger.total == full.scheduled_slots

    def test_no_colors_no_delivery(self, small_path_net):
        result = run_dissemination(small_path_net, 0, {}, {}, seed=5)
        assert not result.success
        assert result.informed.sum() == 1

    def test_rejects_bad_source(self, small_path_net):
        with pytest.raises(ProtocolError):
            run_dissemination(small_path_net, -1, {}, {}, seed=0)

    def test_rejects_color_out_of_range(self, small_path_net):
        kn = small_path_net.knowledge()
        bad = {(0, 1): 2 * kn.max_degree}
        with pytest.raises(ProtocolError):
            run_dissemination(
                small_path_net, 0, bad, {(0, 1): 0}, seed=0
            )

    def test_rejects_missing_dedicated_channel(self, small_path_net):
        with pytest.raises(ProtocolError, match="dedicated"):
            run_dissemination(small_path_net, 0, {(0, 1): 0}, {}, seed=0)

    def test_rejects_improper_coloring(self, small_path_net):
        # Edges (0,1) and (1,2) share node 1 but get the same color.
        colors = {(0, 1): 0, (1, 2): 0}
        dedicated = {
            (0, 1): next(iter(small_path_net.shared_channels(0, 1))),
            (1, 2): next(iter(small_path_net.shared_channels(1, 2))),
        }
        with pytest.raises(ProtocolError, match="not proper"):
            run_dissemination(
                small_path_net, 0, colors, dedicated, seed=0
            )

    def test_scheduled_budget_formula(self, small_path_net):
        kn = small_path_net.knowledge()
        colors, dedicated = prepared_stage(small_path_net, seed=6)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=6
        )
        from repro.core import ProtocolConstants

        consts = ProtocolConstants.fast()
        expected = (
            kn.diameter
            * (2 * kn.max_degree)
            * consts.dissemination_rounds(kn.log_n)
            * kn.log_delta
        )
        assert result.scheduled_slots == expected
