"""Unit tests for the color-scheduled dissemination stage."""

import numpy as np
import pytest

from repro.core import (
    CGCast,
    CSeek,
    LineGraph,
    LubyEdgeColoring,
    agree_dedicated_channels,
    build_color_channels,
    first_heard_payloads,
    oracle_exchange,
    run_dissemination,
    run_dissemination_batch,
)
from repro.model import ProtocolError


def prepared_stage(net, seed=0):
    """Discovery + coloring + dedicated channels for a network."""
    result = CSeek(net, seed=seed).run()
    received = oracle_exchange(
        result.discovered,
        first_heard_payloads(result),
        net.knowledge(),
        CSeek(net, seed=seed).constants,
    )
    edges = net.edges()
    dedicated = agree_dedicated_channels(result, edges, received)
    coloring = LubyEdgeColoring(
        LineGraph.from_edges(edges), net.knowledge(), seed=seed
    ).run()
    return coloring.colors, dedicated


class TestDissemination:
    def test_full_delivery_on_path(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=1)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=1
        )
        assert result.success
        assert result.informed_slot[0] == 0
        assert (result.informed_slot >= 0).all()

    def test_full_delivery_on_clique_chain(self, clique_chain_net):
        colors, dedicated = prepared_stage(clique_chain_net, seed=2)
        result = run_dissemination(
            clique_chain_net, 0, colors, dedicated, seed=2
        )
        assert result.success

    def test_informed_slots_increase_with_distance(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=3)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=3
        )
        slots = result.informed_slot
        # On a path from node 0, farther nodes are informed no earlier
        # (ties possible: a neighbor of the source can be informed in the
        # very first slot, matching the source's conventional slot 0).
        assert all(slots[i] <= slots[i + 1] for i in range(len(slots) - 1))

    def test_early_stop_saves_slots(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=4)
        eager = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=4, early_stop=True
        )
        full = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=4, early_stop=False
        )
        assert eager.ledger.total <= full.ledger.total
        assert full.ledger.total == full.scheduled_slots

    def test_no_colors_no_delivery(self, small_path_net):
        result = run_dissemination(small_path_net, 0, {}, {}, seed=5)
        assert not result.success
        assert result.informed.sum() == 1

    def test_rejects_bad_source(self, small_path_net):
        with pytest.raises(ProtocolError):
            run_dissemination(small_path_net, -1, {}, {}, seed=0)

    def test_rejects_color_out_of_range(self, small_path_net):
        kn = small_path_net.knowledge()
        bad = {(0, 1): 2 * kn.max_degree}
        with pytest.raises(ProtocolError):
            run_dissemination(
                small_path_net, 0, bad, {(0, 1): 0}, seed=0
            )

    def test_rejects_missing_dedicated_channel(self, small_path_net):
        with pytest.raises(ProtocolError, match="dedicated"):
            run_dissemination(small_path_net, 0, {(0, 1): 0}, {}, seed=0)

    def test_rejects_improper_coloring(self, small_path_net):
        # Edges (0,1) and (1,2) share node 1 but get the same color.
        colors = {(0, 1): 0, (1, 2): 0}
        dedicated = {
            (0, 1): next(iter(small_path_net.shared_channels(0, 1))),
            (1, 2): next(iter(small_path_net.shared_channels(1, 2))),
        }
        with pytest.raises(ProtocolError, match="not proper"):
            run_dissemination(
                small_path_net, 0, colors, dedicated, seed=0
            )

    def test_scheduled_budget_formula(self, small_path_net):
        kn = small_path_net.knowledge()
        colors, dedicated = prepared_stage(small_path_net, seed=6)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=6
        )
        from repro.core import ProtocolConstants

        consts = ProtocolConstants.fast()
        expected = (
            kn.diameter
            * (2 * kn.max_degree)
            * consts.dissemination_rounds(kn.log_n)
            * kn.log_delta
        )
        assert result.scheduled_slots == expected


def _slots_per_step(kn):
    from repro.core import ProtocolConstants

    consts = ProtocolConstants.fast()
    return consts.dissemination_rounds(kn.log_n) * kn.log_delta


class TestLedgerAccounting:
    """Charged slots vs the scheduled budget under ``early_stop``."""

    def test_charges_exactly_phases_run(self, small_path_net):
        kn = small_path_net.knowledge()
        colors, dedicated = prepared_stage(small_path_net, seed=7)
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=7, early_stop=True
        )
        # The ledger reflects actual usage: phases_run full phases, each
        # one color-step per color (including colors no edge wears).
        per_phase = (2 * kn.max_degree) * _slots_per_step(kn)
        assert result.ledger.get("dissemination") == (
            result.phases_run * per_phase
        )
        assert result.ledger.total == result.phases_run * per_phase
        # The scheduled budget is reported unchanged.
        assert result.scheduled_slots == kn.diameter * per_phase

    def test_early_stop_runs_whole_final_phase(self, small_path_net):
        # Early stop acts at phase granularity: the phase that informs
        # the last node still charges all of its color steps.
        colors, dedicated = prepared_stage(small_path_net, seed=8)
        kn = small_path_net.knowledge()
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=8, early_stop=True
        )
        assert result.success
        per_phase = (2 * kn.max_degree) * _slots_per_step(kn)
        assert result.ledger.total % per_phase == 0
        assert result.completion_slot <= result.ledger.total

    def test_empty_color_steps_still_charged(self, small_path_net):
        # A schedule using one color still charges every color's step:
        # the paper's schedule is fixed, non-participants idle.
        kn = small_path_net.knowledge()
        colors = {(0, 1): 0}
        dedicated = {
            (0, 1): next(iter(small_path_net.shared_channels(0, 1)))
        }
        result = run_dissemination(
            small_path_net, 0, colors, dedicated, seed=9, early_stop=False
        )
        assert result.ledger.total == result.scheduled_slots
        assert result.phases_run == kn.diameter
        # Node 1 (the only reachable one) was informed within the color-0
        # step of some phase; its slot lies inside that step's window.
        assert result.informed[1]

    def test_empty_schedule_charges_full_budget(self, small_path_net):
        # No colors at all: every step is an idle step, but the schedule
        # still runs (no early stop possible — the path never completes).
        result = run_dissemination(small_path_net, 0, {}, {}, seed=10)
        assert result.ledger.total == result.scheduled_slots

    def test_completion_slot_offset_in_cgcast(self, small_path_net):
        # CGCast.run offsets dissemination-local slots by all
        # pre-dissemination phases; the source stays at slot 0.
        result = CGCast(small_path_net, seed=11).run()
        assert result.success
        pre = result.total_slots - result.ledger.get("dissemination")
        local = result.dissemination.informed_slot
        shifted = local.copy()
        shifted[shifted >= 0] += pre
        shifted[0] = 0
        assert np.array_equal(result.informed_slot, shifted)
        assert result.completion_slot == int(shifted.max())
        assert result.informed_slot[0] == 0


class TestBuildColorChannels:
    def test_matches_schedule(self, small_path_net):
        colors, dedicated = prepared_stage(small_path_net, seed=12)
        table = build_color_channels(colors, dedicated, small_path_net.n)
        assert sorted(table) == sorted(set(colors.values()))
        for color, channels in table.items():
            expected = np.full(small_path_net.n, -1, dtype=np.int64)
            for (u, v), col in colors.items():
                if col == color:
                    expected[u] = dedicated[(u, v)]
                    expected[v] = dedicated[(u, v)]
            assert np.array_equal(channels, expected)

    def test_empty_schedule(self):
        assert build_color_channels({}, {}, 4) == {}

    def test_improper_coloring_raises_serial_message(self):
        colors = {(0, 1): 0, (1, 2): 0}
        dedicated = {(0, 1): 3, (1, 2): 5}
        with pytest.raises(
            ProtocolError, match="node 1 has two edges colored 0"
        ):
            build_color_channels(colors, dedicated, 3)


class TestDisseminationBatch:
    def test_bit_identical_to_serial(self, small_path_net):
        seeds = [2, 5, 13]
        per_trial = [prepared_stage(small_path_net, seed=s) for s in seeds]
        batch = run_dissemination_batch(
            small_path_net.adjacency,
            0,
            [colors for colors, _ in per_trial],
            [dedicated for _, dedicated in per_trial],
            knowledge=small_path_net.knowledge(),
            seeds=seeds,
        )
        for s, (colors, dedicated), got in zip(seeds, per_trial, batch):
            ref = run_dissemination(
                small_path_net, 0, colors, dedicated, seed=s
            )
            assert np.array_equal(got.informed, ref.informed)
            assert np.array_equal(got.informed_slot, ref.informed_slot)
            assert got.ledger.as_dict() == ref.ledger.as_dict()
            assert got.phases_run == ref.phases_run
            assert got.scheduled_slots == ref.scheduled_slots

    def test_per_trial_sources_and_adjacency_stack(self, small_path_net):
        seeds = [4, 6]
        sources = [0, 3]
        colors, dedicated = prepared_stage(small_path_net, seed=14)
        adjacency = np.broadcast_to(
            small_path_net.adjacency,
            (2, small_path_net.n, small_path_net.n),
        ).copy()
        batch = run_dissemination_batch(
            adjacency,
            sources,
            [colors, colors],
            [dedicated, dedicated],
            knowledge=small_path_net.knowledge(),
            seeds=seeds,
        )
        for s, source, got in zip(seeds, sources, batch):
            ref = run_dissemination(
                small_path_net, source, colors, dedicated, seed=s
            )
            assert np.array_equal(got.informed_slot, ref.informed_slot)
            assert got.ledger.as_dict() == ref.ledger.as_dict()

    def test_ragged_schedules_keep_rng_alignment(self, small_path_net):
        # One trial's schedule misses colors another trial has: the
        # absent-color trial must draw nothing in that step, keeping
        # its stream aligned with the serial run.
        seeds = [3, 9]
        colors_full, dedicated_full = prepared_stage(small_path_net, seed=15)
        colors_one = {(0, 1): max(colors_full.values())}
        dedicated_one = {
            (0, 1): next(iter(small_path_net.shared_channels(0, 1)))
        }
        batch = run_dissemination_batch(
            small_path_net.adjacency,
            0,
            [colors_full, colors_one],
            [dedicated_full, dedicated_one],
            knowledge=small_path_net.knowledge(),
            seeds=seeds,
            early_stop=False,
        )
        for s, colors, dedicated, got in zip(
            seeds,
            (colors_full, colors_one),
            (dedicated_full, dedicated_one),
            batch,
        ):
            ref = run_dissemination(
                small_path_net,
                0,
                colors,
                dedicated,
                seed=s,
                early_stop=False,
            )
            assert np.array_equal(got.informed_slot, ref.informed_slot)

    def test_rejects_empty_seeds(self, small_path_net):
        with pytest.raises(ProtocolError, match="at least one trial"):
            run_dissemination_batch(
                small_path_net.adjacency,
                0,
                [],
                [],
                knowledge=small_path_net.knowledge(),
                seeds=[],
            )
