"""Unit tests for topology generators."""

import networkx as nx
import pytest

from repro.graphs import (
    complete_tree,
    cycle,
    erdos_renyi_connected,
    graph_stats,
    grid,
    path,
    path_of_cliques,
    random_geometric,
    random_regular,
    star,
    two_node,
)
from repro.model import TopologyError


class TestGraphStats:
    def test_path_stats(self):
        stats = graph_stats(path(5))
        assert stats.n == 5
        assert stats.m == 4
        assert stats.max_degree == 2
        assert stats.diameter == 4

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(TopologyError):
            graph_stats(g)

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            graph_stats(nx.Graph())


class TestBasicShapes:
    def test_star(self):
        g = star(6)
        assert g.degree(0) == 5
        assert graph_stats(g).diameter == 2

    def test_star_too_small(self):
        with pytest.raises(TopologyError):
            star(1)

    def test_path_nodes_contiguous(self):
        g = path(4)
        assert sorted(g.nodes()) == [0, 1, 2, 3]

    def test_cycle_diameter(self):
        assert graph_stats(cycle(8)).diameter == 4

    def test_cycle_too_small(self):
        with pytest.raises(TopologyError):
            cycle(2)

    def test_grid(self):
        g = grid(3, 4)
        assert g.number_of_nodes() == 12
        stats = graph_stats(g)
        assert stats.max_degree == 4
        assert stats.diameter == 5

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(TopologyError):
            grid(0, 4)
        with pytest.raises(TopologyError):
            grid(1, 1)

    def test_two_node(self):
        g = two_node()
        assert g.number_of_edges() == 1


class TestCompleteTree:
    def test_node_count(self):
        g = complete_tree(2, 3)
        assert g.number_of_nodes() == 1 + 2 + 4 + 8

    def test_diameter_is_twice_depth(self):
        assert graph_stats(complete_tree(3, 2)).diameter == 4

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            complete_tree(0, 2)
        with pytest.raises(TopologyError):
            complete_tree(2, 0)


class TestPathOfCliques:
    def test_shape(self):
        g = path_of_cliques(3, 4)
        assert g.number_of_nodes() == 12
        stats = graph_stats(g)
        assert stats.max_degree == 4  # bridge endpoints
        # Crossing each clique takes at least one hop; diameter grows
        # linearly in the number of cliques.
        assert stats.diameter >= 3

    def test_single_clique(self):
        g = path_of_cliques(1, 3)
        assert g.number_of_edges() == 3

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            path_of_cliques(0, 3)
        with pytest.raises(TopologyError):
            path_of_cliques(2, 1)


class TestRandomFamilies:
    def test_geometric_connected(self):
        g = random_geometric(30, seed=1)
        assert nx.is_connected(g)
        assert sorted(g.nodes()) == list(range(30))

    def test_geometric_impossible_radius(self):
        with pytest.raises(TopologyError):
            random_geometric(40, radius=0.01, seed=1, max_tries=3)

    def test_erdos_renyi_connected(self):
        g = erdos_renyi_connected(30, seed=2)
        assert nx.is_connected(g)

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(TopologyError):
            erdos_renyi_connected(10, p=0.0)

    def test_regular_degree(self):
        g = random_regular(12, 3, seed=3)
        assert all(d == 3 for _, d in g.degree())
        assert nx.is_connected(g)

    def test_regular_infeasible(self):
        with pytest.raises(TopologyError):
            random_regular(5, 3, seed=1)  # n*d odd

    def test_determinism(self):
        g1 = random_geometric(20, seed=9)
        g2 = random_geometric(20, seed=9)
        assert sorted(g1.edges()) == sorted(g2.edges())
