"""Integration tests: slot-level simulated coloring exchanges.

DESIGN.md §2 promises the oracle exchange mode (charge CSEEK's cost,
deliver reliably) is validated against true slot-level simulation on
small instances — these tests are that validation.
"""

import pytest

from repro.core import (
    CGCast,
    LineGraph,
    LubyEdgeColoring,
    is_valid_edge_coloring,
)
from repro.model import ProtocolError


class TestSimulatedColoring:
    @pytest.mark.integration
    def test_simulated_matches_oracle_on_path(self, small_path_net):
        net = small_path_net
        lg = LineGraph.from_edges(net.edges())
        kn = net.knowledge()
        sim = LubyEdgeColoring(
            lg, kn, seed=5, exchange_mode="simulated", network=net
        ).run()
        oracle = LubyEdgeColoring(lg, kn, seed=5).run()
        # With w.h.p.-reliable exchanges the physical run reproduces the
        # oracle's colors, phase count, and slot accounting exactly.
        assert sim.complete and oracle.complete
        assert is_valid_edge_coloring(sim.colors, lg.edges)
        assert sim.colors == oracle.colors
        assert sim.phases_used == oracle.phases_used
        assert sim.ledger.total == oracle.ledger.total

    @pytest.mark.integration
    def test_simulated_valid_on_clique_chain(self, clique_chain_net):
        net = clique_chain_net
        lg = LineGraph.from_edges(net.edges())
        result = LubyEdgeColoring(
            lg,
            net.knowledge(),
            seed=6,
            exchange_mode="simulated",
            network=net,
        ).run()
        assert result.complete
        assert is_valid_edge_coloring(result.colors, lg.edges)

    def test_simulated_requires_network(self, small_path_net):
        lg = LineGraph.from_edges(small_path_net.edges())
        with pytest.raises(ProtocolError, match="requires the physical"):
            LubyEdgeColoring(
                lg, small_path_net.knowledge(), exchange_mode="simulated"
            )

    def test_rejects_unknown_mode(self, small_path_net):
        lg = LineGraph.from_edges(small_path_net.edges())
        with pytest.raises(ProtocolError, match="unknown exchange mode"):
            LubyEdgeColoring(
                lg, small_path_net.knowledge(), exchange_mode="psychic"
            )

    @pytest.mark.integration
    def test_cgcast_simulated_charges_real_coloring_slots(
        self, small_path_net
    ):
        result = CGCast(
            small_path_net, source=0, seed=7, exchange_mode="simulated"
        ).run()
        assert result.success
        assert result.coloring_valid
        assert result.ledger.get("coloring") > 0
