"""Unit tests for Theorem 14 tree instrumentation."""

import numpy as np
import pytest

from repro.graphs import build_theorem14_tree
from repro.lowerbounds import level_completion_slots, per_hop_costs
from repro.model import ProtocolError


class TestLevelTimings:
    def test_levels_grouped_correctly(self):
        net = build_theorem14_tree(c=3, depth=2, seed=1)
        informed = np.arange(net.n, dtype=np.int64)
        timings = level_completion_slots(net, source=0, informed_slot=informed)
        assert [t.level for t in timings] == [0, 1, 2]
        assert timings[0].nodes == 1
        assert timings[1].nodes == 2
        assert timings[2].nodes == 4

    def test_last_informed_is_level_max(self):
        net = build_theorem14_tree(c=3, depth=1, seed=2)
        informed = np.array([0, 5, 9], dtype=np.int64)
        timings = level_completion_slots(net, 0, informed)
        assert timings[1].last_informed_slot == 9

    def test_uninformed_level_reports_none(self):
        net = build_theorem14_tree(c=3, depth=1, seed=3)
        informed = np.array([0, 5, -1], dtype=np.int64)
        timings = level_completion_slots(net, 0, informed)
        assert timings[1].last_informed_slot is None

    def test_shape_validation(self):
        net = build_theorem14_tree(c=3, depth=1, seed=4)
        with pytest.raises(ProtocolError):
            level_completion_slots(net, 0, np.zeros(99, dtype=np.int64))


class TestPerHopCosts:
    def test_costs_are_deltas(self):
        net = build_theorem14_tree(c=3, depth=2, seed=5)
        informed = np.zeros(net.n, dtype=np.int64)
        # Level 1 nodes informed by slot 4, level 2 by slot 10.
        for node, dist in enumerate(
            [0, 1, 1, 2, 2, 2, 2]
        ):
            informed[node] = {0: 0, 1: 4, 2: 10}[dist]
        timings = level_completion_slots(net, 0, informed)
        assert per_hop_costs(timings) == [4, 6]

    def test_none_propagates(self):
        net = build_theorem14_tree(c=3, depth=1, seed=6)
        informed = np.array([0, 3, -1], dtype=np.int64)
        timings = level_completion_slots(net, 0, informed)
        assert per_hop_costs(timings) == [None]
