"""Unit tests for the Luby line-graph coloring (Lemma 8)."""

import pytest

from repro.core import (
    LineGraph,
    LubyEdgeColoring,
    ProtocolConstants,
    is_valid_edge_coloring,
)
from repro.model import ModelKnowledge, ProtocolError


def knowledge_for(net):
    return net.knowledge()


class TestValidityChecker:
    def test_accepts_proper(self):
        edges = [(0, 1), (1, 2)]
        assert is_valid_edge_coloring({(0, 1): 0, (1, 2): 1}, edges)

    def test_rejects_conflict(self):
        edges = [(0, 1), (1, 2)]
        assert not is_valid_edge_coloring({(0, 1): 0, (1, 2): 0}, edges)

    def test_rejects_partial(self):
        edges = [(0, 1), (1, 2)]
        assert not is_valid_edge_coloring({(0, 1): 0}, edges)

    def test_disjoint_edges_may_share_colors(self):
        edges = [(0, 1), (2, 3)]
        assert is_valid_edge_coloring({(0, 1): 0, (2, 3): 0}, edges)


class TestLubyColoring:
    def test_produces_valid_coloring(self, small_regular_net):
        lg = LineGraph.from_edges(small_regular_net.edges())
        kn = knowledge_for(small_regular_net)
        result = LubyEdgeColoring(lg, kn, seed=1).run()
        assert result.complete
        assert is_valid_edge_coloring(result.colors, lg.edges)

    def test_palette_is_two_delta(self, small_regular_net):
        lg = LineGraph.from_edges(small_regular_net.edges())
        kn = knowledge_for(small_regular_net)
        result = LubyEdgeColoring(lg, kn, seed=2).run()
        assert result.palette_size == 2 * kn.max_degree
        assert all(
            0 <= color < result.palette_size
            for color in result.colors.values()
        )

    def test_phases_within_reasonable_budget(self, small_regular_net):
        lg = LineGraph.from_edges(small_regular_net.edges())
        kn = knowledge_for(small_regular_net)
        result = LubyEdgeColoring(lg, kn, seed=3).run()
        # Lemma 8: O(lg n) phases; the scheduled budget has the constant.
        assert result.phases_used <= 2 * result.scheduled_phases

    def test_slots_charged_per_step(self, small_path_net):
        from repro.core import exchange_slot_cost

        lg = LineGraph.from_edges(small_path_net.edges())
        kn = knowledge_for(small_path_net)
        consts = ProtocolConstants.fast()
        result = LubyEdgeColoring(lg, kn, constants=consts, seed=4).run()
        step_cost = 2 * exchange_slot_cost(kn, consts)
        assert result.ledger.get("coloring") == (
            result.phases_used * 2 * step_cost
        )

    def test_deterministic(self, small_path_net):
        lg = LineGraph.from_edges(small_path_net.edges())
        kn = knowledge_for(small_path_net)
        r1 = LubyEdgeColoring(lg, kn, seed=5).run()
        r2 = LubyEdgeColoring(lg, kn, seed=5).run()
        assert r1.colors == r2.colors
        assert r1.phases_used == r2.phases_used

    def test_no_overrun_stops_at_budget(self, small_regular_net):
        lg = LineGraph.from_edges(small_regular_net.edges())
        kn = knowledge_for(small_regular_net)
        result = LubyEdgeColoring(
            lg, kn, seed=6, allow_overrun=False
        ).run()
        assert result.phases_used <= result.scheduled_phases

    def test_rejects_bad_loss_rate(self, small_path_net):
        lg = LineGraph.from_edges(small_path_net.edges())
        kn = knowledge_for(small_path_net)
        with pytest.raises(ProtocolError):
            LubyEdgeColoring(lg, kn, loss_rate=1.0)

    def test_loss_injection_can_break_validity(self, small_regular_net):
        """With heavy exchange loss, conflicts slip through and the
        checker reports them — the reproduction's failure-mode probe."""
        lg = LineGraph.from_edges(small_regular_net.edges())
        kn = knowledge_for(small_regular_net)
        broken = 0
        for seed in range(8):
            result = LubyEdgeColoring(
                lg, kn, seed=seed, loss_rate=0.6
            ).run()
            if not (
                result.complete
                and is_valid_edge_coloring(result.colors, lg.edges)
            ):
                broken += 1
        assert broken > 0

    def test_empty_line_graph(self):
        lg = LineGraph.from_edges([])
        kn = ModelKnowledge(
            n=4, c=4, k=1, kmax=1, max_degree=1, diameter=1
        )
        result = LubyEdgeColoring(lg, kn, seed=7).run()
        assert result.complete
        assert result.colors == {}
        assert result.phases_used == 0
