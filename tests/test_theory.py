"""Unit tests for the bound curves."""

import pytest

from repro.analysis import (
    broadcast_lower_bound,
    cgcast_bound,
    ckseek_bound,
    complete_game_floor,
    cseek_bound,
    hitting_game_floor,
    naive_broadcast_bound,
    naive_discovery_bound,
    nd_lower_bound,
    zeng_discovery_bound,
)
from repro.analysis.theory import knowledge_bounds
from repro.model import ModelKnowledge, SpecError


class TestUpperBounds:
    def test_cseek_shape(self):
        assert cseek_bound(c=10, k=2, kmax=2, delta=5) == 50 + 5

    def test_cseek_with_polylog(self):
        value = cseek_bound(c=10, k=2, kmax=2, delta=5, n=16)
        assert value == 50 * 64 + 5 * 16

    def test_ckseek_decreases_in_khat(self):
        lo = ckseek_bound(c=10, khat=2, kmax=4, delta_khat=5, delta=5)
        hi = ckseek_bound(c=10, khat=4, kmax=4, delta_khat=5, delta=5)
        assert hi < lo

    def test_cgcast_shape(self):
        assert cgcast_bound(
            c=10, k=2, kmax=2, delta=5, diameter=4
        ) == 50 + 5 + 20

    def test_naive_bounds_multiply(self):
        assert naive_discovery_bound(c=10, k=2, delta=5) == 250
        assert naive_broadcast_bound(c=10, k=2, diameter=4) == 200

    def test_zeng_dominates_cseek(self):
        """Zeng's bound is never better than CSEEK's (Section 2)."""
        for c in (4, 8, 16):
            for k in (1, 2, 4):
                for delta in (2, 8, 32):
                    kmax = k  # c >= kmax always
                    assert zeng_discovery_bound(c, k, delta) >= cseek_bound(
                        c, k, kmax, delta
                    )

    def test_rejects_bad_core_params(self):
        with pytest.raises(SpecError):
            cseek_bound(c=4, k=5, kmax=5, delta=2)


class TestLowerBounds:
    def test_hitting_game_floor_beta2(self):
        # alpha = 2 * (2/1)^2 = 8.
        assert hitting_game_floor(c=8, k=2) == 64 / 16

    def test_hitting_game_floor_rejects_large_k(self):
        with pytest.raises(SpecError):
            hitting_game_floor(c=8, k=5)

    def test_hitting_game_floor_rejects_small_beta(self):
        with pytest.raises(SpecError):
            hitting_game_floor(c=8, k=2, beta=1.5)

    def test_complete_game_floor(self):
        assert complete_game_floor(9) == 3.0
        with pytest.raises(SpecError):
            complete_game_floor(0)

    def test_nd_lower_bound_branches(self):
        small_k = nd_lower_bound(c=8, k=2, delta=3)
        assert small_k == 8 * 8 / (8 * 2) + 3
        large_k = nd_lower_bound(c=8, k=6, delta=3)
        assert large_k == 8 / 3 + 3

    def test_broadcast_lower_bound_uses_min(self):
        wide = broadcast_lower_bound(c=4, k=1, delta=100, diameter=5)
        assert wide == 4 * 4 / 8 + 5 * 4
        narrow = broadcast_lower_bound(c=100, k=1, delta=4, diameter=5)
        assert narrow == 100 * 100 / 8 + 5 * 4

    def test_upper_respects_lower(self):
        """CSEEK's bound dominates the ND lower bound (consistency)."""
        for c in (4, 8, 16):
            for k in (1, 2):
                for delta in (2, 8):
                    assert cseek_bound(c, k, k, delta) >= 0.9 * nd_lower_bound(
                        c, k, delta
                    )


class TestKnowledgeBounds:
    def test_all_keys_present(self):
        kn = ModelKnowledge(
            n=16, c=8, k=2, kmax=2, max_degree=4, diameter=3
        )
        bounds = knowledge_bounds(kn)
        assert set(bounds) == {
            "cseek",
            "cgcast",
            "naive_discovery",
            "naive_broadcast",
            "zeng_discovery",
            "nd_lower",
            "broadcast_lower",
        }
        assert all(v > 0 for v in bounds.values())
