"""Unit tests for network builders."""

import pytest

from repro.graphs import (
    build_network,
    build_random_subset_network,
    build_theorem14_tree,
    build_two_node_network,
    path,
    star,
)
from repro.model import AssignmentError, TopologyError


class TestBuildNetwork:
    def test_exact_uniform_realized_params(self):
        net = build_network(path(6), c=8, k=3, seed=1)
        kn = net.knowledge()
        assert kn.k == 3
        assert kn.kmax == 3
        assert kn.max_degree == 2
        assert kn.diameter == 5

    def test_heterogeneous_realizes_both_levels(self):
        net = build_network(
            path(8), c=10, k=1, seed=2, kind="heterogeneous", kmax=4
        )
        kn = net.knowledge()
        assert kn.k == 1
        assert kn.kmax == 4

    def test_global_core_on_dense_graph(self):
        net = build_network(star(12), c=6, k=2, seed=3, kind="global_core")
        kn = net.knowledge()
        assert kn.k == 2
        assert kn.kmax == 2
        assert kn.max_degree == 11

    def test_unknown_kind_errors(self):
        with pytest.raises(AssignmentError):
            build_network(path(4), c=6, k=1, seed=0, kind="bogus")


class TestTwoNodeNetwork:
    def test_overlap_and_shape(self):
        net = build_two_node_network(c=8, k=3, seed=4)
        assert net.n == 2
        assert net.edge_overlap(0, 1) == 3
        assert net.knowledge().max_degree == 1


class TestRandomSubsetNetwork:
    def test_induced_edges_respect_k(self):
        net = build_random_subset_network(
            n=12, c=6, k=2, pool_size=12, seed=5
        )
        for u, v in net.edges():
            assert net.edge_overlap(u, v) >= 2

    def test_infeasible_pool_errors(self):
        with pytest.raises(TopologyError):
            build_random_subset_network(
                n=8, c=3, k=3, pool_size=500, seed=6, max_tries=3
            )


class TestTheorem14Tree:
    def test_structure(self):
        net = build_theorem14_tree(c=4, depth=2, seed=7)
        # fanout = c - 1 = 3: 1 + 3 + 9 nodes.
        assert net.n == 13
        assert net.max_degree == 4  # root 3 children; internal 1 + 3

    def test_parent_child_overlap_one(self):
        net = build_theorem14_tree(c=4, depth=2, seed=8)
        for u, v in net.edges():
            assert net.edge_overlap(u, v) == 1

    def test_siblings_share_nothing(self):
        net = build_theorem14_tree(c=4, depth=1, seed=9)
        # Children of the root are 1..3 and pairwise non-adjacent.
        for a in range(1, 4):
            for b in range(a + 1, 4):
                assert len(net.shared_channels(a, b)) == 0

    def test_delta_bound_applies(self):
        net = build_theorem14_tree(c=10, depth=1, seed=10, delta=3)
        assert net.n == 3  # fanout min(10,3)-1 = 2

    def test_rejects_degenerate_fanout(self):
        with pytest.raises(TopologyError):
            build_theorem14_tree(c=1, depth=2, seed=11)
