"""Unit tests for the CSEEK exchange primitive."""

import pytest

from repro.core import (
    ProtocolConstants,
    exchange_slot_cost,
    oracle_exchange,
    simulated_exchange,
)
from repro.model import ProtocolError
from repro.sim import SlotLedger


class TestOracleExchange:
    def test_delivery_along_known_pairs(self, small_path_net):
        kn = small_path_net.knowledge()
        neighbor_sets = [
            set(int(v) for v in small_path_net.neighbors(u))
            for u in range(small_path_net.n)
        ]
        payloads = [f"msg-{u}" for u in range(small_path_net.n)]
        received = oracle_exchange(
            neighbor_sets, payloads, kn, ProtocolConstants.fast()
        )
        assert received[0] == {1: "msg-1"}
        assert received[1] == {0: "msg-0", 2: "msg-2"}

    def test_charges_exchange_cost(self, small_path_net):
        kn = small_path_net.knowledge()
        consts = ProtocolConstants.fast()
        ledger = SlotLedger()
        oracle_exchange(
            [set() for _ in range(small_path_net.n)],
            [None] * small_path_net.n,
            kn,
            consts,
            ledger=ledger,
        )
        assert ledger.get("exchange") == exchange_slot_cost(kn, consts)

    def test_rejects_payload_mismatch(self, small_path_net):
        kn = small_path_net.knowledge()
        with pytest.raises(ProtocolError):
            oracle_exchange(
                [set()] * small_path_net.n, [1, 2], kn,
                ProtocolConstants.fast(),
            )


class TestSimulatedExchange:
    def test_neighbors_receive_payloads(self, small_path_net):
        payloads = [u * 100 for u in range(small_path_net.n)]
        ledger = SlotLedger()
        received = simulated_exchange(
            small_path_net, payloads, seed=5, ledger=ledger
        )
        # Every delivered payload must come from a true neighbor and
        # carry that neighbor's value.
        for u in range(small_path_net.n):
            for v, value in received[u].items():
                assert small_path_net.is_edge(u, v)
                assert value == v * 100
        assert ledger.get("exchange") > 0

    def test_whp_full_coverage(self, small_path_net):
        payloads = list(range(small_path_net.n))
        received = simulated_exchange(small_path_net, payloads, seed=6)
        for u in range(small_path_net.n):
            expected = {int(v) for v in small_path_net.neighbors(u)}
            assert set(received[u]) == expected

    def test_rejects_payload_mismatch(self, small_path_net):
        with pytest.raises(ProtocolError):
            simulated_exchange(small_path_net, [1, 2, 3], seed=0)


class TestExchangeCost:
    def test_cost_positive_and_scales_with_c(self, small_path_net):
        kn = small_path_net.knowledge()
        consts = ProtocolConstants.fast()
        base = exchange_slot_cost(kn, consts)
        assert base > 0
        from dataclasses import replace

        bigger = replace(consts, part1_factor=2 * consts.part1_factor)
        assert exchange_slot_cost(kn, bigger) > base
