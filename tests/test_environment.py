"""The spectrum-environment subsystem (repro.sim.environment).

Three invariant families: (1) the batched ``MarkovTraffic`` recurrence
is bit-identical, per trial, to the legacy sequential
``PrimaryUserTraffic`` stream it refactors; (2) the gather-based
``jam_mask`` equals the old per-node loop on every channel shape; and
(3) the protocol layer produces identical results whether traffic
arrives via ``environment=``, the deprecated ``jammer=`` alias, or the
trial-batched runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CGCast, CSeek, CSeekBatch, batched_discovery
from repro.model import ProtocolError
from repro.sim import (
    MarkovTraffic,
    PoissonTraffic,
    PrimaryUserTraffic,
    StaticMask,
    make_environment,
)

IDS = [2, 5, 9, 14]
SEEDS = [3, 17, 99]


def reference_jam_mask(occupied, channel_ids, channels):
    """The pre-refactor per-node loop, kept as the test oracle."""
    column = {g: i for i, g in enumerate(channel_ids)}
    num_slots = occupied.shape[0]
    mask = np.zeros((num_slots, len(channels)), dtype=bool)
    for u, ch in enumerate(channels):
        col = column.get(int(ch))
        if col is not None:
            mask[:, u] = occupied[:, col]
    return mask


class TestMarkovBitIdentity:
    """MarkovTraffic batched vs legacy PrimaryUserTraffic streams."""

    def legacy(self, seed, activity=0.4, dwell=6.0):
        return PrimaryUserTraffic(
            IDS, activity=activity, mean_dwell=dwell, seed=seed
        )

    def env(self, activity=0.4, dwell=6.0):
        return MarkovTraffic(
            IDS, activity=activity, mean_dwell=dwell, seed_offset=0
        )

    def test_plain_occupancy_matches_per_trial(self):
        block = self.env().streams(SEEDS).occupied_block(300)
        for b, s in enumerate(SEEDS):
            ref = self.legacy(s).occupied_block(300)
            assert np.array_equal(block[b], ref)

    def test_saturated_activity_matches_per_trial(self):
        # activity > dwell/(dwell+1): the OFF->ON probability clamps at
        # 1, the recurrence's saturation branch.
        env = self.env(activity=0.9, dwell=1.5)
        assert env.realized_activity == pytest.approx(1.5 / 2.5)
        block = env.streams(SEEDS).occupied_block(400)
        for b, s in enumerate(SEEDS):
            ref = self.legacy(s, activity=0.9, dwell=1.5)
            assert np.array_equal(block[b], ref.occupied_block(400))

    def test_chunked_blocks_match_per_trial(self):
        # Protocols consume occupancy in uneven step-sized chunks; the
        # batched stream must carry state across blocks exactly as the
        # sequential one does.
        chunks = [1, 7, 64, 3, 1, 100, 24]
        stream = self.env().streams(SEEDS)
        parts = [stream.occupied_block(size) for size in chunks]
        stacked = np.concatenate(parts, axis=1)
        for b, s in enumerate(SEEDS):
            ref = self.legacy(s).occupied_block(sum(chunks))
            assert np.array_equal(stacked[b], ref)

    def test_serial_stream_matches_legacy_jam_mask(self):
        channels = np.array([2, 14, -1, 7, 5])
        env_mask = self.env().stream(SEEDS[0]).jam_mask(channels, 150)
        ref_mask = self.legacy(SEEDS[0]).jam_mask(channels, 150)
        assert env_mask.shape == (150, 5)
        assert np.array_equal(env_mask, ref_mask)

    def test_zero_activity_never_occupies(self):
        env = self.env(activity=0.0)
        assert not env.streams(SEEDS).occupied_block(200).any()
        assert env.realized_activity == 0.0


class TestPoissonTraffic:
    def test_stationary_occupancy_matches_activity(self):
        env = PoissonTraffic(list(range(16)), activity=0.35, seed_offset=0)
        block = env.streams([1, 2]).occupied_block(5000)
        assert abs(block.mean() - 0.35) == pytest.approx(0, abs=0.02)
        assert env.realized_activity == 0.35

    def test_memoryless_slots_are_uncorrelated(self):
        # Consecutive-slot correlation ~0 distinguishes Poisson from a
        # Markov chain at the same occupancy (whose correlation is
        # 1 - on_prob - off_prob > 0 for long dwells).
        env = PoissonTraffic([0], activity=0.5, seed_offset=0)
        series = env.streams([7]).occupied_block(20000)[0, :, 0]
        corr = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert abs(corr) < 0.03
        markov = MarkovTraffic(
            [0], activity=0.5, mean_dwell=16.0, seed_offset=0
        )
        mseries = markov.streams([7]).occupied_block(20000)[0, :, 0]
        mcorr = np.corrcoef(mseries[:-1], mseries[1:])[0, 1]
        assert mcorr > 0.5

    def test_chunked_blocks_bit_identical_to_one_shot(self):
        chunks = [5, 1, 30, 14]
        env = PoissonTraffic(IDS, activity=0.4, seed_offset=0)
        stream = env.streams(SEEDS)
        parts = [stream.occupied_block(c) for c in chunks]
        one_shot = env.streams(SEEDS).occupied_block(sum(chunks))
        assert np.array_equal(np.concatenate(parts, axis=1), one_shot)

    def test_rejects_bad_activity(self):
        with pytest.raises(ProtocolError):
            PoissonTraffic(IDS, activity=1.0)
        with pytest.raises(ProtocolError):
            PoissonTraffic(IDS, activity=-0.1)


class TestStaticMask:
    def test_blocked_channels_always_jammed(self):
        env = StaticMask([2, 5])
        channels = np.array([2, 3, -1, 5])
        mask = env.streams([0, 1]).jam_mask(channels, 4)
        assert mask.shape == (2, 4, 4)
        assert mask[:, :, 0].all() and mask[:, :, 3].all()
        assert not mask[:, :, 1].any() and not mask[:, :, 2].any()

    def test_deterministic_across_seeds(self):
        env = StaticMask([1])
        a = env.streams([0]).occupied_block(10)
        b = env.streams([12345]).occupied_block(10)
        assert np.array_equal(a, b)

    def test_empty_blocked_set_is_all_clear(self):
        env = StaticMask([])
        mask = env.streams([0]).jam_mask(np.array([0, 1, -1]), 6)
        assert not mask.any()


class TestJamMaskGather:
    @pytest.mark.parametrize(
        "env_factory",
        [
            lambda: MarkovTraffic(
                IDS, activity=0.5, mean_dwell=3.0, seed_offset=0
            ),
            lambda: PoissonTraffic(IDS, activity=0.5, seed_offset=0),
            lambda: StaticMask(IDS),
        ],
        ids=["markov", "poisson", "static"],
    )
    def test_gather_matches_per_node_loop(self, env_factory):
        # Idle (-1), managed, unmanaged and above-max channel ids, with
        # per-trial channel rows.
        rng = np.random.default_rng(0)
        channels = np.stack(
            [
                rng.choice([-1, 0, 2, 5, 7, 9, 14, 99], size=6)
                for _ in SEEDS
            ]
        )
        occ_stream = env_factory().streams(SEEDS)
        mask_stream = env_factory().streams(SEEDS)
        occupied = occ_stream.occupied_block(40)
        mask = mask_stream.jam_mask(channels, 40)
        for b in range(len(SEEDS)):
            ref = reference_jam_mask(occupied[b], IDS, channels[b])
            assert np.array_equal(mask[b], ref)

    def test_shared_channel_row_broadcasts(self):
        channels = np.array([2, 9, -1])
        env = StaticMask([2, 9])
        mask = env.streams(SEEDS).jam_mask(channels, 5)
        assert mask.shape == (len(SEEDS), 5, 3)
        assert mask[:, :, :2].all() and not mask[:, :, 2].any()

    def test_trial_count_mismatch_rejected(self):
        env = StaticMask([2])
        with pytest.raises(ProtocolError):
            env.streams([0, 1]).jam_mask(np.zeros((3, 4), dtype=int), 5)

    def test_legacy_jam_mask_still_matches_loop(self):
        # PrimaryUserTraffic.jam_mask was vectorized too; pin it
        # against the loop oracle through its own occupancy stream.
        channels = np.array([2, 9, -1, 7, 14, 5])
        occ = PrimaryUserTraffic(
            IDS, activity=0.5, mean_dwell=3.0, seed=21
        ).occupied_block(60)
        got = PrimaryUserTraffic(
            IDS, activity=0.5, mean_dwell=3.0, seed=21
        ).jam_mask(channels, 60)
        assert np.array_equal(got, reference_jam_mask(occ, IDS, channels))


class TestEnvironmentValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ProtocolError):
            MarkovTraffic([], activity=0.5)
        with pytest.raises(ProtocolError):
            MarkovTraffic([-1], activity=0.5)
        with pytest.raises(ProtocolError):
            MarkovTraffic([0], activity=0.5, mean_dwell=0.5)
        with pytest.raises(ProtocolError):
            MarkovTraffic([0], activity=1.0)

    def test_empty_seed_list_rejected(self):
        for env in (
            MarkovTraffic(IDS, activity=0.5),
            PoissonTraffic(IDS, activity=0.5),
            StaticMask(IDS),
        ):
            with pytest.raises(ProtocolError):
                env.streams([])

    def test_make_environment_lowering(self):
        assert isinstance(
            make_environment("markov", IDS, activity=0.5), MarkovTraffic
        )
        assert isinstance(
            make_environment("poisson", IDS, activity=0.5), PoissonTraffic
        )
        assert isinstance(
            make_environment("static", IDS, blocked=[2]), StaticMask
        )
        # Disabled configurations lower to None.
        assert make_environment("markov", IDS, activity=0.0) is None
        assert make_environment("poisson", IDS, activity=0.0) is None
        assert make_environment("static", IDS, blocked=[]) is None
        assert make_environment("static", IDS) is None
        with pytest.raises(ProtocolError, match="unknown interference"):
            make_environment("fractal", IDS, activity=0.5)


class TestProtocolIntegration:
    def _env(self, net, model="markov"):
        ids = sorted(net.assignment.universe())
        if model == "poisson":
            return PoissonTraffic(ids, activity=0.5)
        return MarkovTraffic(ids, activity=0.5, mean_dwell=6.0)

    def test_environment_equals_legacy_jammer(self, small_path_net):
        env = self._env(small_path_net)
        ids = sorted(small_path_net.assignment.universe())
        for s in SEEDS:
            via_env = CSeek(
                small_path_net, seed=s, environment=env
            ).run()
            via_jammer = CSeek(
                small_path_net,
                seed=s,
                jammer=PrimaryUserTraffic(
                    ids, activity=0.5, mean_dwell=6.0, seed=s + 1000
                ),
            ).run()
            assert via_env.discovered == via_jammer.discovered
            assert (
                via_env.trace.first_heard == via_jammer.trace.first_heard
            )

    @pytest.mark.parametrize("model", ["markov", "poisson"])
    def test_batched_environment_matches_serial(
        self, small_path_net, model
    ):
        env = self._env(small_path_net, model)
        batch = CSeekBatch(small_path_net, environment=env).run(SEEDS)
        for b, s in enumerate(SEEDS):
            ref = CSeek(small_path_net, seed=s, environment=env).run()
            assert batch[b].discovered == ref.discovered
            assert np.array_equal(batch[b].counts, ref.counts)
            assert batch[b].trace.first_heard == ref.trace.first_heard
            assert batch[b].ledger.as_dict() == ref.ledger.as_dict()

    def test_environment_changes_outcomes(self, small_path_net):
        env = self._env(small_path_net)
        jammed = CSeekBatch(small_path_net, environment=env).run(SEEDS)
        clear = CSeekBatch(small_path_net).run(SEEDS)
        assert any(
            jammed[b].trace.first_heard != clear[b].trace.first_heard
            for b in range(len(SEEDS))
        )

    def test_static_environment_blocks_channels(self, small_path_net):
        # Blocking every channel silences all reception.
        env = StaticMask(sorted(small_path_net.assignment.universe()))
        result = CSeek(small_path_net, seed=1, environment=env).run()
        assert all(not d for d in result.discovered)

    def test_jammer_and_environment_mutually_exclusive(
        self, small_path_net
    ):
        ids = sorted(small_path_net.assignment.universe())
        jammer = PrimaryUserTraffic(ids, activity=0.5, seed=0)
        env = self._env(small_path_net)
        with pytest.raises(ProtocolError, match="not both"):
            CSeek(small_path_net, jammer=jammer, environment=env)
        with pytest.raises(ProtocolError, match="not both"):
            CSeekBatch(
                small_path_net,
                jammer_factory=lambda s: jammer,
                environment=env,
            )

    def test_batch_inherits_prototype_environment(self, small_path_net):
        env = self._env(small_path_net)
        proto = CSeek(small_path_net, seed=0, environment=env)
        batch = proto.batch()
        assert batch.environment is env
        got = batch.run([SEEDS[0]])[0]
        ref = CSeek(
            small_path_net, seed=SEEDS[0], environment=env
        ).run()
        assert got.trace.first_heard == ref.trace.first_heard

    @pytest.mark.integration
    def test_cgcast_discovery_injection_with_environment(
        self, clique_chain_net
    ):
        env = MarkovTraffic(
            sorted(clique_chain_net.assignment.universe()),
            activity=0.4,
            mean_dwell=6.0,
        )
        discoveries = batched_discovery(
            clique_chain_net, SEEDS, environment=env
        )
        for s, disc in zip(SEEDS, discoveries):
            plain = CGCast(
                clique_chain_net, source=0, seed=s, environment=env
            ).run()
            injected = CGCast(
                clique_chain_net,
                source=0,
                seed=s,
                environment=env,
                discovery=disc,
            ).run()
            assert np.array_equal(injected.informed, plain.informed)
            assert injected.ledger.as_dict() == plain.ledger.as_dict()


class TestActivityVectors:
    """Per-channel heterogeneous activity targets (scalar path pinned)."""

    def test_markov_uniform_vector_is_bit_identical_to_scalar(self):
        scalar = MarkovTraffic(IDS, activity=0.4, mean_dwell=6.0)
        vector = MarkovTraffic(
            IDS, activity=[0.4] * len(IDS), mean_dwell=6.0
        )
        a = scalar.streams(SEEDS).occupied_block(400)
        b = vector.streams(SEEDS).occupied_block(400)
        assert np.array_equal(a, b)

    def test_poisson_uniform_vector_is_bit_identical_to_scalar(self):
        scalar = PoissonTraffic(IDS, activity=0.3)
        vector = PoissonTraffic(IDS, activity=[0.3] * len(IDS))
        a = scalar.streams(SEEDS).occupied_block(400)
        b = vector.streams(SEEDS).occupied_block(400)
        assert np.array_equal(a, b)

    def test_scalar_activity_stays_a_plain_float(self):
        # The historical scalar surface must not silently become an
        # array (reprs, JSON manifests and realized_activity rely on it).
        env = MarkovTraffic(IDS, activity=0.4)
        assert isinstance(env.activity, float)
        assert isinstance(env.realized_activity, float)

    @pytest.mark.parametrize("cls", [MarkovTraffic, PoissonTraffic])
    def test_zero_entries_never_occupy_their_channel(self, cls):
        env = cls(IDS, activity=[0.0, 0.5, 0.0, 0.8])
        block = env.streams([7]).occupied_block(600)[0]
        assert not block[:, 0].any()
        assert not block[:, 2].any()
        assert block[:, 1].any() and block[:, 3].any()

    @pytest.mark.parametrize("cls", [MarkovTraffic, PoissonTraffic])
    def test_per_channel_occupancy_tracks_targets(self, cls):
        targets = [0.1, 0.5, 0.8, 0.3]
        env = cls(IDS, activity=targets)
        block = env.streams(list(range(8))).occupied_block(800)
        means = block.reshape(-1, len(IDS)).mean(axis=0)
        assert np.allclose(means, targets, atol=0.06)

    def test_markov_vector_realized_activity_per_channel(self):
        env = MarkovTraffic(IDS, activity=[0.0, 0.4, 0.6, 0.9],
                            mean_dwell=4.0)
        realized = env.realized_activity
        assert realized.shape == (len(IDS),)
        assert realized[0] == 0.0
        # 0.9 exceeds the dwell/(dwell+1) = 0.8 cap; others are exact.
        assert realized[1] == pytest.approx(0.4)
        assert realized[2] == pytest.approx(0.6)
        assert realized[3] == pytest.approx(0.8)

    @pytest.mark.parametrize("cls", [MarkovTraffic, PoissonTraffic])
    def test_wrong_length_vector_rejected(self, cls):
        with pytest.raises(ProtocolError, match="one entry per"):
            cls(IDS, activity=[0.5] * (len(IDS) + 1))

    @pytest.mark.parametrize("cls", [MarkovTraffic, PoissonTraffic])
    def test_out_of_range_entries_rejected(self, cls):
        with pytest.raises(ProtocolError, match="\\[0, 1\\)"):
            cls(IDS, activity=[0.5, 1.0, 0.2, 0.3])

    def test_make_environment_accepts_vectors(self):
        env = make_environment("poisson", IDS,
                               activity=[0.0, 0.2, 0.0, 0.4])
        assert isinstance(env, PoissonTraffic)
        assert make_environment(
            "markov", IDS, activity=[0.0] * len(IDS)
        ) is None

    def test_jam_mask_respects_heterogeneous_channels(self):
        env = PoissonTraffic(IDS, activity=[0.0, 0.9, 0.0, 0.9])
        channels = np.array([IDS[0], IDS[1], -1, IDS[3]])
        mask = env.streams([5]).jam_mask(channels, 500)[0]
        assert not mask[:, 0].any()  # zero-activity channel
        assert not mask[:, 2].any()  # idle node
        assert mask[:, 1].any() and mask[:, 3].any()

    def test_make_environment_rejects_mis_sized_zero_vector(self):
        # An all-zero vector of the wrong length is a spec error, not a
        # silent interference-free run.
        with pytest.raises(ProtocolError, match="one entry per"):
            make_environment("markov", IDS, activity=[0.0, 0.0])

    @pytest.mark.parametrize("cls", [MarkovTraffic, PoissonTraffic])
    def test_nan_activity_entries_rejected(self, cls):
        with pytest.raises(ProtocolError, match="\\[0, 1\\)"):
            cls(IDS, activity=[0.4, float("nan"), 0.2, 0.1])
