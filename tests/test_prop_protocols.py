"""Property-based tests on protocol invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CSeek, ProtocolConstants, run_count_step
from repro.graphs import build_network, cycle, path, random_regular
from repro.sim import PrimaryUserTraffic


@st.composite
def small_network(draw):
    """A small exact-overlap network with feasible parameters."""
    kind = draw(st.sampled_from(["path", "cycle", "regular"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    if kind == "path":
        n = draw(st.integers(min_value=3, max_value=10))
        graph = path(n)
    elif kind == "cycle":
        n = draw(st.integers(min_value=4, max_value=10))
        graph = cycle(n)
    else:
        n = draw(st.sampled_from([6, 8, 10]))
        graph = random_regular(n, 3, seed=seed)
    delta = max(d for _, d in graph.degree())
    k = draw(st.integers(min_value=1, max_value=2))
    c = draw(st.integers(min_value=delta * k, max_value=delta * k + 4))
    return build_network(graph, c=c, k=k, seed=seed), seed


class TestCSeekInvariants:
    @given(small_network())
    @settings(max_examples=15, deadline=None)
    def test_discovered_always_true_neighbors(self, case):
        """Soundness: CSEEK never reports a non-neighbor (receptions can
        only come from graph neighbors on shared channels)."""
        net, seed = case
        result = CSeek(
            net, seed=seed, part1_steps=30, part2_steps=10
        ).run()
        truth = net.true_neighbor_sets()
        for u in range(net.n):
            assert result.discovered[u] <= set(truth[u])

    @given(small_network())
    @settings(max_examples=10, deadline=None)
    def test_ledger_matches_slots(self, case):
        net, seed = case
        result = CSeek(
            net, seed=seed, part1_steps=10, part2_steps=5
        ).run()
        assert result.ledger.total == result.total_slots
        assert result.step_start_slots.shape[0] == 15

    @given(small_network())
    @settings(max_examples=10, deadline=None)
    def test_first_heard_channels_are_shared(self, case):
        net, seed = case
        result = CSeek(
            net, seed=seed, part1_steps=30, part2_steps=10
        ).run()
        for (u, v), event in result.trace.first_heard.items():
            assert event.channel in net.shared_channels(u, v)
            assert 0 <= event.slot < result.total_slots


class TestCountInvariants:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimates_nonnegative_and_silent_zero(self, m, seed):
        n = m + 1
        adj = np.zeros((n, n), dtype=bool)
        adj[0, 1:] = True
        adj[1:, 0] = True
        channels = np.zeros(n, dtype=np.int64)
        tx_role = np.ones(n, dtype=bool)
        tx_role[0] = False
        out = run_count_step(
            adj, channels, tx_role,
            max_count=16, log_n=4,
            constants=ProtocolConstants(),
            rng=np.random.default_rng(seed),
        )
        assert (out.estimates >= 0).all()
        # Broadcasters never estimate.
        assert (out.estimates[1:] == 0).all()
        # Reception counts match the raw step outcome.
        received = (out.step.heard_from >= 0).sum()
        assert out.round_receptions.sum() == received


class TestInterferenceInvariants:
    @given(
        st.floats(min_value=0.05, max_value=0.9),
        st.floats(min_value=1.0, max_value=50.0),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_occupancy_blocks_are_boolean_and_bounded(
        self, activity, dwell, seed
    ):
        traffic = PrimaryUserTraffic(
            list(range(8)), activity=activity, mean_dwell=dwell, seed=seed
        )
        block = traffic.occupied_block(64)
        assert block.shape == (64, 8)
        assert block.dtype == bool

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_jamming_only_removes_part_one_receptions(self, seed):
        """A jammed part-one run's receptions are a subset of the clean
        run's.

        Restricted to part one: with the same seed, part one makes
        identical channel/role/coin choices and jamming purely filters
        receptions. Part two is *adaptive* (its listener weights come
        from the jam-affected COUNT estimates), so its choices — and
        hence its receptions — legitimately diverge.
        """
        network = build_network(path(6), c=6, k=2, seed=seed)
        clean = CSeek(
            network, seed=seed, part1_steps=20, part2_steps=0
        ).run()
        traffic = PrimaryUserTraffic(
            sorted(network.assignment.universe()),
            activity=0.5,
            mean_dwell=6.0,
            seed=seed + 1,
        )
        jammed = CSeek(
            network,
            seed=seed,
            part1_steps=20,
            part2_steps=0,
            jammer=traffic,
        ).run()
        for u in range(network.n):
            assert jammed.discovered[u] <= clean.discovered[u]
