"""The CI benchmark regression gate (benchmarks/compare_bench.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def write_bench_json(path: Path, means: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def baseline(tmp_path):
    return write_bench_json(
        tmp_path / "baseline.json",
        {"bench_key": 1.0, "bench_free": 1.0},
    )


def run_gate(fresh, baseline, **kwargs):
    argv = [
        str(fresh),
        "--baseline",
        str(baseline),
        "--key",
        kwargs.pop("key", "bench_key"),
    ]
    for flag, value in kwargs.items():
        argv += [f"--{flag}", str(value)]
    return compare_bench.main(argv)


class TestVerdicts:
    def test_identical_passes(self, tmp_path, baseline, capsys):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 1.0, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 0
        assert "OK" in capsys.readouterr().out

    def test_synthetic_2x_slowdown_fails(self, tmp_path, baseline, capsys):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 2.0, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "bench_key" in out

    def test_slowdown_within_threshold_passes(self, tmp_path, baseline):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 1.2, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 0

    def test_non_key_slowdown_does_not_gate(self, tmp_path, baseline, capsys):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 1.0, "bench_free": 9.0}
        )
        assert run_gate(fresh, baseline) == 0
        assert "SLOWER" in capsys.readouterr().out

    def test_speedup_passes(self, tmp_path, baseline, capsys):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 0.4, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 0
        assert "faster" in capsys.readouterr().out

    def test_missing_key_benchmark_fails(self, tmp_path, baseline):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 1

    def test_new_benchmark_without_baseline_passes(self, tmp_path, baseline):
        fresh = write_bench_json(
            tmp_path / "fresh.json",
            {"bench_key": 1.0, "bench_free": 1.0, "bench_brand_new": 5.0},
        )
        assert run_gate(fresh, baseline) == 0

    def test_key_benchmark_missing_from_baseline_fails(
        self, tmp_path, baseline, capsys
    ):
        """A gated benchmark with no baseline entry means the committed
        baseline is stale — fail so someone refreshes it."""
        fresh = write_bench_json(
            tmp_path / "fresh.json",
            {"bench_key": 1.0, "bench_free": 1.0, "bench_key2": 1.0},
        )
        assert run_gate(fresh, baseline, key="bench_key,bench_key2") == 1
        assert "refresh" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path, baseline):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 1.2, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline, threshold=0.1) == 1


class TestInputs:
    def test_missing_baseline_file(self, tmp_path):
        fresh = write_bench_json(tmp_path / "fresh.json", {"bench_key": 1.0})
        assert (
            compare_bench.main(
                [str(fresh), "--baseline", str(tmp_path / "nope.json")]
            )
            == 2
        )

    def test_missing_fresh_file(self, baseline, tmp_path):
        assert (
            compare_bench.main(
                [str(tmp_path / "nope.json"), "--baseline", str(baseline)]
            )
            == 2
        )

    def test_step_summary_written(
        self, tmp_path, baseline, monkeypatch, capsys
    ):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 2.0, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline) == 1
        capsys.readouterr()
        text = summary.read_text()
        assert "Benchmark comparison" in text
        assert "bench_key" in text

    def test_default_key_set_names_cseek_pair(self):
        assert "bench_cseek16_serial" in compare_bench.KEY_BENCHMARKS
        assert "bench_cseek16_batched" in compare_bench.KEY_BENCHMARKS

    def test_committed_baseline_contains_key_benchmarks(self):
        baseline = compare_bench.load_means(compare_bench.DEFAULT_BASELINE)
        for name in compare_bench.KEY_BENCHMARKS:
            assert name in baseline, f"{name} missing from BENCH_baseline.json"

    def test_baseline_records_batched_cseek_win(self):
        """The tentpole's claim, pinned in the committed baseline: the
        trial-batched CSEEK end-to-end run beats the serial loop."""
        baseline = compare_bench.load_means(compare_bench.DEFAULT_BASELINE)
        assert (
            baseline["bench_cseek16_batched"]
            < baseline["bench_cseek16_serial"]
        )


class TestRatioGates:
    def test_batched_slower_than_serial_fails(self, capsys):
        fresh = {"bench_cseek16_batched": 2.0, "bench_cseek16_serial": 1.0}
        failures = compare_bench.check_ratio_gates(fresh)
        assert len(failures) == 1
        assert "bench_cseek16_batched" in failures[0]

    def test_batched_faster_than_serial_passes(self):
        fresh = {"bench_cseek16_batched": 0.5, "bench_cseek16_serial": 1.0}
        assert compare_bench.check_ratio_gates(fresh) == []

    def test_missing_pair_is_not_a_ratio_failure(self):
        assert compare_bench.check_ratio_gates({}) == []

    def test_ratio_gate_reaches_exit_code(self, tmp_path, capsys):
        """End to end: an inverted batched/serial pair fails main()
        even when every absolute comparison is within threshold."""
        means = {
            "bench_cseek16_batched": 3.0,
            "bench_cseek16_serial": 1.0,
            "bench_key": 1.0,
        }
        base = write_bench_json(tmp_path / "base.json", means)
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        assert run_gate(fresh, base) == 1
        assert "no longer beats" in capsys.readouterr().out

    def test_committed_baseline_passes_ratio_gates(self):
        baseline = compare_bench.load_means(compare_bench.DEFAULT_BASELINE)
        assert compare_bench.check_ratio_gates(baseline) == []

    def test_ratio_gate_operands_are_key_benchmarks(self):
        """A renamed/removed gate operand must trip the key-benchmark
        missing check — it cannot silently disable its ratio gate."""
        for numerator, denominator, _ in compare_bench.RATIO_GATES:
            assert numerator in compare_bench.KEY_BENCHMARKS
            assert denominator in compare_bench.KEY_BENCHMARKS

    def test_jammed_cseek_pair_is_gated(self):
        """The spectrum-environment PR's claim: the jammed batched path
        beats the jammed serial loop, on whatever machine ran it."""
        pairs = {(n, d) for n, d, _ in compare_bench.RATIO_GATES}
        assert (
            "bench_jammed_cseek16_batched",
            "bench_jammed_cseek16_serial",
        ) in pairs
        baseline = compare_bench.load_means(compare_bench.DEFAULT_BASELINE)
        assert (
            baseline["bench_jammed_cseek16_batched"]
            < baseline["bench_jammed_cseek16_serial"]
        )


class TestBaselineStore:
    def store_dir(self, tmp_path):
        return tmp_path / ".repro_cache"

    def test_round_trip(self, tmp_path):
        means = {"bench_key": 1.0, "bench_free": 2.0}
        path = compare_bench.write_store_baseline(
            self.store_dir(tmp_path), means
        )
        assert path.parent == self.store_dir(tmp_path)
        assert (
            compare_bench.load_store_baseline(
                self.store_dir(tmp_path), tuple(means)
            )
            == means
        )

    def test_key_depends_on_benchmark_set(self):
        a = compare_bench.store_key(("bench_a", "bench_b"))
        assert a == compare_bench.store_key(("bench_b", "bench_a"))
        assert a != compare_bench.store_key(("bench_a",))

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        store = self.store_dir(tmp_path)
        names = ("bench_key",)
        assert compare_bench.load_store_baseline(store, names) is None
        store.mkdir()
        compare_bench.store_path(store, names).write_text("{not json")
        assert compare_bench.load_store_baseline(store, names) is None

    def test_store_replaces_committed_baseline(
        self, tmp_path, baseline, capsys
    ):
        # Committed baseline says 1.0; the store says 0.4 — a fresh 1.0
        # run is a >30% regression against the *stored* numbers.
        means = {"bench_key": 1.0, "bench_free": 1.0}
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        store = self.store_dir(tmp_path)
        compare_bench.write_store_baseline(
            store, {"bench_key": 0.4, "bench_free": 1.0}
        )
        assert run_gate(fresh, baseline, store=str(store)) == 1
        out = capsys.readouterr().out
        assert "bench-baseline-" in out  # the store was the baseline

    def test_store_miss_falls_back_to_committed(
        self, tmp_path, baseline, capsys
    ):
        means = {"bench_key": 1.0, "bench_free": 1.0}
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        assert (
            run_gate(
                fresh, baseline, store=str(self.store_dir(tmp_path))
            )
            == 0
        )
        assert "baseline.json" in capsys.readouterr().out

    def test_write_store_records_passing_run(self, tmp_path, baseline):
        means = {"bench_key": 0.9, "bench_free": 1.0}
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        store = self.store_dir(tmp_path)
        argv = [
            str(fresh),
            "--baseline",
            str(baseline),
            "--key",
            "bench_key",
            "--store",
            str(store),
            "--write-store",
        ]
        assert compare_bench.main(argv) == 0
        assert (
            compare_bench.load_store_baseline(store, tuple(means)) == means
        )
        # The next run diffs against the stored means, not the
        # committed file: 1.3 vs stored 0.9 is a >30% regression even
        # though it matches the committed 1.0 within threshold.
        fresh2 = write_bench_json(
            tmp_path / "fresh2.json",
            {"bench_key": 1.3, "bench_free": 1.0},
        )
        assert compare_bench.main(
            [a if a != str(fresh) else str(fresh2) for a in argv]
        ) == 1

    def test_failing_run_seeds_a_cold_store(self, tmp_path, baseline):
        # The committed baseline came from other hardware; a cold-store
        # failure is reported once, then the fresh means become the
        # comparable baseline for subsequent runs.
        store = self.store_dir(tmp_path)
        means = {"bench_key": 9.0, "bench_free": 1.0}
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        argv = [
            str(fresh),
            "--baseline",
            str(baseline),
            "--key",
            "bench_key",
            "--store",
            str(store),
            "--write-store",
        ]
        assert compare_bench.main(argv) == 1
        assert (
            compare_bench.load_store_baseline(store, tuple(means)) == means
        )

    def test_failing_run_ratchets_an_existing_entry(
        self, tmp_path, baseline
    ):
        # An outlier-fast stored baseline must self-heal: the failing
        # run moves the stored mean up by at most the threshold, so the
        # job cannot stay red forever, and a corrupt store entry never
        # crashes the comparison (it is a miss).
        store = self.store_dir(tmp_path)
        means = {"bench_key": 1.0, "bench_free": 1.0}
        compare_bench.write_store_baseline(
            store, {"bench_key": 0.4, "bench_free": 1.0}
        )
        fresh = write_bench_json(tmp_path / "fresh.json", means)
        argv = [
            str(fresh),
            "--baseline",
            str(baseline),
            "--key",
            "bench_key",
            "--store",
            str(store),
            "--write-store",
        ]
        assert compare_bench.main(argv) == 1
        stored = compare_bench.load_store_baseline(store, tuple(means))
        assert stored["bench_key"] == pytest.approx(0.4 * 1.3)
        assert stored["bench_free"] == 1.0
        # Convergence: each identical re-run ratchets by another 30%
        # until the comparison passes and adopts the fresh means
        # outright — geometrically bounded, never wedged.
        codes = [compare_bench.main(argv) for _ in range(4)]
        assert 0 in codes
        assert (
            compare_bench.load_store_baseline(store, tuple(means)) == means
        )

    def test_corrupt_store_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = self.store_dir(tmp_path)
        store.mkdir()
        names = ("bench_key",)
        compare_bench.store_path(store, names).write_text(
            json.dumps({"means": {"bench_key": None}})
        )
        assert compare_bench.load_store_baseline(store, names) is None

    def test_write_store_requires_store(self, tmp_path, baseline):
        fresh = write_bench_json(
            tmp_path / "fresh.json", {"bench_key": 1.0}
        )
        with pytest.raises(SystemExit):
            compare_bench.main(
                [str(fresh), "--baseline", str(baseline), "--write-store"]
            )
