"""Tests for the campaign subsystem: spec, store, orchestrator, reports.

The determinism/resume contract is the heart of the suite: a campaign
interrupted at any point and re-run must produce rows bit-identical to
an uninterrupted run, and reports/diffs must come from the store alone
(no re-execution).
"""

import json

import pytest

from repro.campaigns import (
    CampaignEntry,
    CampaignSpec,
    RunStore,
    campaign_digest,
    campaign_from_dict,
    campaign_report,
    campaign_to_dict,
    diff_refs,
    get_campaign,
    load_ref,
    run_campaign,
    run_id_for,
    summary_rows,
    write_report,
)
from repro.campaigns import orchestrate
from repro.harness.runner import ExperimentTable
from repro.model.errors import HarnessError


def tiny_campaign(name="tiny", **kwargs):
    """A fast two-entry campaign over tiny COUNT grids."""
    return CampaignSpec(
        name=name,
        title="tiny study",
        entries=(
            CampaignEntry(
                scenario="count-interference",
                id="clean",
                overrides={
                    "sweep.axes.m": [2],
                    "sweep.axes.activity": [0.0, 0.5],
                },
                trials=4,
            ),
            CampaignEntry(
                scenario="count-interference",
                id="noisy",
                overrides={
                    "sweep.axes.m": [2],
                    "sweep.axes.activity": [0.3, 0.7],
                },
                trials=4,
            ),
        ),
        **kwargs,
    )


def entry_rows_bytes(store_dir, campaign, entry_id):
    store = RunStore(store_dir)
    run = store.latest_run(campaign)
    return (run.entry_dir(entry_id) / "rows.json").read_bytes()


class TestCampaignSpec:
    def test_needs_entries(self):
        with pytest.raises(HarnessError, match="at least one entry"):
            CampaignSpec(name="x", title="t", entries=())

    def test_duplicate_entry_ids_rejected(self):
        with pytest.raises(HarnessError, match="duplicate entry ids"):
            CampaignSpec(
                name="x",
                title="t",
                entries=(
                    CampaignEntry(scenario="E1", id="a"),
                    CampaignEntry(scenario="E2", id="a"),
                ),
            )

    def test_entry_id_must_be_slug(self):
        with pytest.raises(HarnessError, match="lowercase slug"):
            CampaignEntry(scenario="E1", id="Not A Slug")

    def test_default_entry_ids_derive_from_slot_and_scenario(self):
        spec = CampaignSpec(
            name="x",
            title="t",
            entries=(
                CampaignEntry(scenario="E1"),
                CampaignEntry(scenario="markov-vs-poisson"),
            ),
        )
        assert spec.entry_ids() == ["01-e1", "02-markov-vs-poisson"]

    def test_file_entry_id_uses_stem(self):
        entry = CampaignEntry(scenario="examples/scenarios/foo_bar.json")
        assert entry.resolved_id(0) == "01-foo_bar"

    def test_round_trip_preserves_digest(self):
        spec = tiny_campaign(trials=3, seed=7, tags=("t",))
        back = campaign_from_dict(campaign_to_dict(spec))
        assert back == spec
        assert campaign_digest(back) == campaign_digest(spec)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(HarnessError, match="unknown campaign keys"):
            campaign_from_dict({"name": "x", "entries": [], "nope": 1})

    def test_from_dict_rejects_unknown_entry_keys(self):
        with pytest.raises(
            HarnessError, match="unknown campaign entry keys"
        ):
            campaign_from_dict(
                {"name": "x", "entries": [{"scenario": "E1", "zz": 2}]}
            )

    def test_bare_string_entry_shorthand(self):
        spec = campaign_from_dict(
            {"name": "x", "entries": ["E1", "E2"]}
        )
        assert [e.scenario for e in spec.entries] == ["E1", "E2"]

    def test_normalized_overrides_json_dump_non_strings(self):
        entry = CampaignEntry(
            scenario="E1",
            overrides={"sweep.axes.m": [2, 4], "trials": "8"},
        )
        assert entry.normalized_overrides() == {
            "sweep.axes.m": "[2, 4]",
            "trials": "8",
        }

    def test_stock_campaigns_registered(self):
        suite = get_campaign("paper-suite")
        assert [e.scenario for e in suite.entries] == [
            f"E{i}" for i in range(1, 13)
        ]
        traffic = get_campaign("traffic-models")
        assert traffic.entry_ids() == ["markov", "poisson"]

    def test_digest_changes_with_overrides(self):
        a = tiny_campaign()
        b = tiny_campaign(seed=1)
        assert campaign_digest(a) != campaign_digest(b)


class TestRunIds:
    def test_deterministic(self):
        spec = tiny_campaign()
        assert run_id_for(spec, 0, None) == run_id_for(spec, 0, None)

    def test_sensitive_to_seed_and_trials(self):
        spec = tiny_campaign()
        base = run_id_for(spec, 0, None)
        assert run_id_for(spec, 1, None) != base
        assert run_id_for(spec, 0, 2) != base


class TestOrchestrator:
    def test_fresh_run_persists_rows_and_manifests(self, tmp_path):
        log = []
        result = run_campaign(
            tiny_campaign(), store=tmp_path, jobs="batch",
            log=log.append,
        )
        assert [o.status for o in result.outcomes] == ["ran", "ran"]
        run = RunStore(tmp_path).latest_run("tiny")
        assert run.entry_ids() == ["clean", "noisy"]
        for entry_id in ("clean", "noisy"):
            manifest = run.entry_manifest(entry_id)
            assert manifest["status"] == "done"
            assert manifest["row_count"] == 2
            assert manifest["executor"] == "batch"
            assert manifest["scenario"] == "count-interference"
            for field in (
                "key", "scenario_digest", "code", "python", "numpy",
                "wall_time", "trials", "seed",
            ):
                assert field in manifest, field
            directory = run.entry_dir(entry_id)
            assert (directory / "rows.csv").exists()
            assert (directory / "table.md").exists()
            table = run.load_entry_table(entry_id)
            assert isinstance(table, ExperimentTable)
            assert len(table.rows) == 2
        assert run.manifest()["status"] == "done"
        # The ordered progress log names every entry in order.
        assert any("[1/2] clean" in line for line in log)
        assert any("[2/2] noisy" in line for line in log)

    def test_resume_skips_completed_entries_bit_identically(
        self, tmp_path
    ):
        spec = tiny_campaign()
        run_campaign(spec, store=tmp_path, jobs="batch", log=lambda _: None)
        before = entry_rows_bytes(tmp_path, "tiny", "clean")
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == [
            "cached", "cached",
        ]
        assert entry_rows_bytes(tmp_path, "tiny", "clean") == before

    def test_interrupted_campaign_resumes_bit_identically(
        self, tmp_path, monkeypatch
    ):
        """Kill mid-campaign; the resume must match an uninterrupted run."""
        spec = tiny_campaign()
        reference = tmp_path / "reference"
        interrupted = tmp_path / "interrupted"
        run_campaign(
            spec, store=reference, jobs="batch", log=lambda _: None
        )

        real_run_scenario = orchestrate.run_scenario
        calls = []

        def dying_run_scenario(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 2:
                raise KeyboardInterrupt  # the "kill" arrives here
            return real_run_scenario(*args, **kwargs)

        monkeypatch.setattr(
            orchestrate, "run_scenario", dying_run_scenario
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec, store=interrupted, jobs="batch",
                log=lambda _: None,
            )
        monkeypatch.setattr(
            orchestrate, "run_scenario", real_run_scenario
        )
        # Only the first entry completed; the second left no manifest.
        run = RunStore(interrupted).run(
            "tiny", run_id_for(spec, 0, None)
        )
        assert run.entry_manifest("clean")["status"] == "done"
        assert run.entry_manifest("noisy") is None

        result = run_campaign(
            spec, store=interrupted, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["cached", "ran"]
        for entry_id in ("clean", "noisy"):
            assert entry_rows_bytes(
                interrupted, "tiny", entry_id
            ) == entry_rows_bytes(reference, "tiny", entry_id)

    def test_failed_entry_recorded_and_rerun(self, tmp_path):
        bad = CampaignSpec(
            name="bad",
            title="t",
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="ok",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                    trials=2,
                ),
                # Unknown metric: resolves fine, fails at run time.
                CampaignEntry(
                    scenario="count-interference",
                    id="boom",
                    overrides={"metrics": ["no_such_metric"]},
                    trials=2,
                ),
            ),
        )
        result = run_campaign(
            bad, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "failed"]
        assert result.failed[0].error
        run = RunStore(tmp_path).latest_run("bad")
        manifest = run.entry_manifest("boom")
        assert manifest["status"] == "failed"
        assert "no_such_metric" in manifest["error"]
        # A resume keeps the finished entry and retries the failed one.
        result2 = run_campaign(
            bad, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result2.outcomes] == [
            "cached", "failed",
        ]

    def test_bad_entry_fails_before_any_execution(self, tmp_path):
        spec = CampaignSpec(
            name="doomed",
            title="t",
            entries=(
                CampaignEntry(scenario="count-interference", id="ok"),
                CampaignEntry(scenario="no-such-scenario", id="nope"),
            ),
        )
        with pytest.raises(HarnessError, match="unknown scenario"):
            run_campaign(spec, store=tmp_path, log=lambda _: None)
        assert RunStore(tmp_path).list_runs("doomed") == []

    def test_campaign_pool_matches_serial_rows(self, tmp_path):
        spec = tiny_campaign()
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        run_campaign(spec, store=serial, log=lambda _: None)
        result = run_campaign(
            spec, store=pooled, campaign_jobs=2, log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "ran"]
        for entry_id in ("clean", "noisy"):
            assert entry_rows_bytes(
                pooled, "tiny", entry_id
            ) == entry_rows_bytes(serial, "tiny", entry_id)

    def test_seed_and_trials_precedence(self, tmp_path):
        spec = CampaignSpec(
            name="seeds",
            title="t",
            seed=3,
            trials=2,
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="pinned",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                    seed=11,
                    trials=5,
                ),
                CampaignEntry(
                    scenario="count-interference",
                    id="default",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                ),
            ),
        )
        run_campaign(spec, store=tmp_path, log=lambda _: None)
        run = RunStore(tmp_path).latest_run("seeds")
        pinned = run.entry_manifest("pinned")
        default = run.entry_manifest("default")
        # Explicit entry seed beats the campaign seed; entry trials
        # beat the campaign default.
        assert (pinned["seed"], pinned["trials"]) == (11, 5)
        assert (default["seed"], default["trials"]) == (3, 2)
        # An invocation-level trials override beats them all.
        run_campaign(
            spec, store=tmp_path, trials=1, log=lambda _: None
        )
        runs = RunStore(tmp_path).list_runs("seeds")
        assert len(runs) == 2  # the override landed in its own run dir
        smoke = RunStore(tmp_path).run("seeds", runs[-1])
        assert smoke.entry_manifest("pinned")["trials"] == 1

    def test_campaign_jobs_validation(self, tmp_path):
        with pytest.raises(HarnessError, match="campaign_jobs"):
            run_campaign(
                tiny_campaign(), store=tmp_path, campaign_jobs=0,
                log=lambda _: None,
            )


class TestStore:
    def test_completed_entry_requires_key_match(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        key = run.entry_manifest("clean")["key"]
        assert run.completed_entry("clean", key) is not None
        assert run.completed_entry("clean", "stale-key") is None

    def test_corrupt_rows_are_a_miss(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        (run.entry_dir("clean") / "rows.json").write_text("{broken")
        key = run.entry_manifest("clean")["key"]
        assert run.completed_entry("clean", key) is None

    def test_latest_run_missing_campaign_raises(self, tmp_path):
        with pytest.raises(HarnessError, match="no stored runs"):
            RunStore(tmp_path).latest_run("ghost")

    def test_store_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "envstore"))
        assert RunStore().root == tmp_path / "envstore"


class TestReportAndDiff:
    @pytest.fixture()
    def stored(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, jobs="batch",
            log=lambda _: None,
        )
        return tmp_path

    def test_report_contains_summary_and_tables(self, stored):
        run = RunStore(stored).latest_run("tiny")
        report = campaign_report(run)
        assert "# Campaign report — tiny @" in report
        assert "## Summary" in report
        assert "## clean" in report and "## noisy" in report
        assert "median_ratio" in report

    def test_write_report_outputs_md_and_csv(self, stored, tmp_path):
        run = RunStore(stored).latest_run("tiny")
        paths = write_report(run, tmp_path / "out")
        assert paths["markdown"].read_text().startswith(
            "# Campaign report"
        )
        header = paths["csv"].read_text().splitlines()[0]
        assert header.startswith("entry,scenario,status")

    def test_summary_rows_cover_all_entries(self, stored):
        run = RunStore(stored).latest_run("tiny")
        rows = summary_rows(run)
        assert [r["entry"] for r in rows] == ["clean", "noisy"]
        assert all(r["status"] == "done" for r in rows)

    def test_self_diff_is_identical(self, stored):
        md, identical = diff_refs(RunStore(stored), "tiny", "tiny")
        assert identical
        assert "Verdict: identical rows." in md

    def test_entry_diff_reports_deltas(self, stored):
        md, identical = diff_refs(
            RunStore(stored), "tiny:clean", "tiny:noisy"
        )
        assert not identical
        assert "activity (a)" in md and "Δ activity" in md
        assert "Verdict: runs differ." in md

    def test_run_vs_entry_mix_rejected(self, stored):
        with pytest.raises(HarnessError, match="cannot diff"):
            diff_refs(RunStore(stored), "tiny", "tiny:clean")

    def test_unknown_entry_names_alternatives(self, stored):
        with pytest.raises(HarnessError, match="no entry"):
            load_ref(RunStore(stored), "tiny:nope")

    def test_path_references_resolve(self, stored):
        store = RunStore(stored)
        run = store.latest_run("tiny")
        ref = load_ref(store, str(run.path))
        assert ref.run.campaign == "tiny"
        entry_ref = load_ref(store, str(run.entry_dir("clean")))
        assert entry_ref.entry_id == "clean"

    def test_explicit_run_id_reference(self, stored):
        store = RunStore(stored)
        run_id = store.list_runs("tiny")[-1]
        ref = load_ref(store, f"tiny@{run_id}")
        assert ref.run.run_id == run_id
        with pytest.raises(HarnessError, match="no stored run"):
            load_ref(store, "tiny@s9-aaaaaaaaaa")


@pytest.mark.integration
class TestTrafficModelsAcceptance:
    """The ISSUE's pinned criterion: markov vs poisson from the store."""

    def test_stock_traffic_models_reports_without_reexecution(
        self, tmp_path, monkeypatch
    ):
        run_campaign(
            "traffic-models",
            trials=1,
            jobs="batch",
            store=tmp_path,
            log=lambda _: None,
        )

        # From here on, any execution attempt is a test failure: the
        # report and diff must come from the store alone.
        def forbid(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("report/diff re-executed a scenario")

        monkeypatch.setattr(orchestrate, "run_scenario", forbid)
        store = RunStore(tmp_path)
        report = campaign_report(store.latest_run("traffic-models"))
        assert "markov" in report and "poisson" in report
        assert "success" in report

        md, identical = diff_refs(
            store, "traffic-models:markov", "traffic-models:poisson"
        )
        assert not identical
        # The occupancy sweep aligns on the activity axis; the traffic
        # model column is the controlled difference.
        assert "model (a)" in md
        assert "markov" in md and "poisson" in md
        assert "activity" in md

    def test_campaign_cli_trials_run_is_disjoint_from_default(
        self, tmp_path
    ):
        spec = get_campaign("traffic-models")
        assert run_id_for(spec, 0, 1) != run_id_for(spec, 0, None)


class TestCampaignFiles:
    def test_example_campaign_files_load(self):
        from repro.campaigns import load_campaign_file

        tiny = load_campaign_file("examples/campaigns/tiny_suite.json")
        assert tiny.name == "tiny-suite"
        assert tiny.entry_ids() == ["counts-clean", "counts-noisy"]
        traffic = load_campaign_file(
            "examples/campaigns/traffic_small.json"
        )
        assert traffic.entry_ids() == ["markov", "poisson"]

    def test_campaign_file_round_trip(self, tmp_path):
        from repro.campaigns import load_campaign_file

        spec = tiny_campaign()
        path = tmp_path / "c.json"
        path.write_text(json.dumps(campaign_to_dict(spec)))
        assert load_campaign_file(path) == spec


def _killed_worker(payload):  # module-level: must pickle by reference
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


class TestReviewRegressions:
    def test_dead_pool_worker_records_failure_not_crash(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            orchestrate, "_execute_entry", _killed_worker
        )
        result = run_campaign(
            tiny_campaign(), store=tmp_path, campaign_jobs=2,
            log=lambda _: None,
        )
        assert [o.status for o in result.outcomes] == [
            "failed", "failed",
        ]
        assert all("worker died" in o.error for o in result.outcomes)
        run = RunStore(tmp_path).latest_run("tiny")
        assert run.manifest()["status"] == "partial"

    def test_diff_ignores_stale_rows_behind_failed_manifest(
        self, tmp_path
    ):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        # Simulate: the entry most recently failed, but an older
        # success left rows.json behind.
        manifest = run.entry_manifest("clean")
        run.write_failed_entry("clean", manifest, "boom")
        md, identical = diff_refs(
            RunStore(tmp_path), "tiny:clean", "tiny:noisy"
        )
        assert not identical
        assert "No completed rows" in md

    def test_campaign_file_string_trials_fails_cleanly(self):
        with pytest.raises(HarnessError, match="must be an integer"):
            campaign_from_dict(
                {
                    "name": "x",
                    "entries": [
                        {"scenario": "count-interference",
                         "trials": "not-a-number"},
                    ],
                }
            )
        # Integral strings coerce (JSON written by other tools).
        spec = campaign_from_dict(
            {
                "name": "x",
                "trials": "4",
                "entries": [{"scenario": "count-interference"}],
            }
        )
        assert spec.trials == 4

    def test_list_valued_overrides_rejected_cleanly(self):
        with pytest.raises(HarnessError, match="overrides must be"):
            campaign_from_dict(
                {
                    "name": "x",
                    "entries": [
                        {"scenario": "count-interference",
                         "overrides": ["sweep.axes.m=[2]"]},
                    ],
                }
            )

    def test_write_report_entry_scope_matches_printed_report(
        self, tmp_path
    ):
        from repro.campaigns import write_report

        run_campaign(
            tiny_campaign(), store=tmp_path / "s", log=lambda _: None
        )
        run = RunStore(tmp_path / "s").latest_run("tiny")
        paths = write_report(run, tmp_path / "out", entry_id="clean")
        text = paths["markdown"].read_text()
        assert text.startswith("# Entry report")
        assert "noisy" not in text
        assert paths["csv"].name == "rows.csv"
        header = paths["csv"].read_text().splitlines()[0]
        assert "median_ratio" in header

    def test_no_tmp_files_survive_a_completed_run(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_campaign_name_must_be_a_slug(self):
        for bad in ("../evil", "has space", "a@b", "a:b", ""):
            with pytest.raises(HarnessError, match="slug|non-empty"):
                CampaignSpec(
                    name=bad,
                    title="t",
                    entries=(CampaignEntry(scenario="E1"),),
                )

    def test_corrupt_rows_shape_reruns_entry_on_resume(self, tmp_path):
        spec = tiny_campaign()
        run_campaign(spec, store=tmp_path, jobs="batch", log=lambda _: None)
        run = RunStore(tmp_path).latest_run("tiny")
        rows = run.entry_dir("clean") / "rows.json"
        payload = json.loads(rows.read_text())
        payload["rows"] = 42  # valid JSON, wrong shape
        rows.write_text(json.dumps(payload))
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "cached"]

    def test_non_string_fields_fail_cleanly(self):
        with pytest.raises(HarnessError, match="entry 0 id must be"):
            campaign_from_dict(
                {"name": "x",
                 "entries": [{"scenario": "E1", "id": 3}]}
            )
        with pytest.raises(
            HarnessError, match="entry 0 scenario must be"
        ):
            campaign_from_dict({"name": "x", "entries": [{"scenario": 1}]})
        with pytest.raises(HarnessError, match="campaign name must be"):
            campaign_from_dict({"name": 3, "entries": ["E1"]})

    def test_string_tags_rejected_not_exploded(self):
        with pytest.raises(HarnessError, match="list of strings"):
            campaign_from_dict(
                {"name": "x", "entries": ["E1"], "tags": "paper"}
            )
