"""Tests for the campaign subsystem: spec, store, orchestrator, reports.

The determinism/resume contract is the heart of the suite: a campaign
interrupted at any point and re-run must produce rows bit-identical to
an uninterrupted run, and reports/diffs must come from the store alone
(no re-execution).
"""

import json

import pytest

from repro.campaigns import (
    CampaignEntry,
    CampaignSpec,
    RunStore,
    SuccessDelta,
    campaign_digest,
    campaign_from_dict,
    campaign_report,
    campaign_to_dict,
    diff_refs,
    evaluate_run,
    expand_campaign,
    gate_exit_code,
    get_campaign,
    load_ref,
    run_campaign,
    run_id_for,
    seeded_shuffle,
    summary_rows,
    verdict_table,
    write_report,
)
from repro.campaigns import orchestrate
from repro.harness.runner import ExperimentTable
from repro.model.errors import HarnessError, StoreError


def tiny_campaign(name="tiny", **kwargs):
    """A fast two-entry campaign over tiny COUNT grids."""
    return CampaignSpec(
        name=name,
        title="tiny study",
        entries=(
            CampaignEntry(
                scenario="count-interference",
                id="clean",
                overrides={
                    "sweep.axes.m": [2],
                    "sweep.axes.activity": [0.0, 0.5],
                },
                trials=4,
            ),
            CampaignEntry(
                scenario="count-interference",
                id="noisy",
                overrides={
                    "sweep.axes.m": [2],
                    "sweep.axes.activity": [0.3, 0.7],
                },
                trials=4,
            ),
        ),
        **kwargs,
    )


def entry_rows_bytes(store_dir, campaign, entry_id):
    store = RunStore(store_dir)
    run = store.latest_run(campaign)
    return (run.entry_dir(entry_id) / "rows.json").read_bytes()


class TestCampaignSpec:
    def test_needs_entries(self):
        with pytest.raises(HarnessError, match="at least one entry"):
            CampaignSpec(name="x", title="t", entries=())

    def test_duplicate_entry_ids_rejected(self):
        with pytest.raises(HarnessError, match="duplicate entry ids"):
            CampaignSpec(
                name="x",
                title="t",
                entries=(
                    CampaignEntry(scenario="E1", id="a"),
                    CampaignEntry(scenario="E2", id="a"),
                ),
            )

    def test_entry_id_must_be_slug(self):
        with pytest.raises(HarnessError, match="lowercase slug"):
            CampaignEntry(scenario="E1", id="Not A Slug")

    def test_default_entry_ids_derive_from_slot_and_scenario(self):
        spec = CampaignSpec(
            name="x",
            title="t",
            entries=(
                CampaignEntry(scenario="E1"),
                CampaignEntry(scenario="markov-vs-poisson"),
            ),
        )
        assert spec.entry_ids() == ["01-e1", "02-markov-vs-poisson"]

    def test_file_entry_id_uses_stem(self):
        entry = CampaignEntry(scenario="examples/scenarios/foo_bar.json")
        assert entry.resolved_id(0) == "01-foo_bar"

    def test_round_trip_preserves_digest(self):
        spec = tiny_campaign(trials=3, seed=7, tags=("t",))
        back = campaign_from_dict(campaign_to_dict(spec))
        assert back == spec
        assert campaign_digest(back) == campaign_digest(spec)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(HarnessError, match="unknown campaign keys"):
            campaign_from_dict({"name": "x", "entries": [], "nope": 1})

    def test_from_dict_rejects_unknown_entry_keys(self):
        with pytest.raises(
            HarnessError, match="unknown campaign entry keys"
        ):
            campaign_from_dict(
                {"name": "x", "entries": [{"scenario": "E1", "zz": 2}]}
            )

    def test_bare_string_entry_shorthand(self):
        spec = campaign_from_dict(
            {"name": "x", "entries": ["E1", "E2"]}
        )
        assert [e.scenario for e in spec.entries] == ["E1", "E2"]

    def test_normalized_overrides_json_dump_non_strings(self):
        entry = CampaignEntry(
            scenario="E1",
            overrides={"sweep.axes.m": [2, 4], "trials": "8"},
        )
        assert entry.normalized_overrides() == {
            "sweep.axes.m": "[2, 4]",
            "trials": "8",
        }

    def test_stock_campaigns_registered(self):
        suite = get_campaign("paper-suite")
        assert [e.scenario for e in suite.entries] == [
            f"E{i}" for i in range(1, 13)
        ]
        traffic = get_campaign("traffic-models")
        assert traffic.entry_ids() == ["poisson", "markov"]
        assert traffic.gated()
        gated = get_campaign("cseek-vs-naive")
        assert gated.entry_ids() == ["naive", "cseek"]
        assert gated.gated()

    def test_digest_changes_with_overrides(self):
        a = tiny_campaign()
        b = tiny_campaign(seed=1)
        assert campaign_digest(a) != campaign_digest(b)


class TestRunIds:
    def test_deterministic(self):
        spec = tiny_campaign()
        assert run_id_for(spec, 0, None) == run_id_for(spec, 0, None)

    def test_sensitive_to_seed_and_trials(self):
        spec = tiny_campaign()
        base = run_id_for(spec, 0, None)
        assert run_id_for(spec, 1, None) != base
        assert run_id_for(spec, 0, 2) != base


class TestOrchestrator:
    def test_fresh_run_persists_rows_and_manifests(self, tmp_path):
        log = []
        result = run_campaign(
            tiny_campaign(), store=tmp_path, jobs="batch",
            log=log.append,
        )
        assert [o.status for o in result.outcomes] == ["ran", "ran"]
        run = RunStore(tmp_path).latest_run("tiny")
        assert run.entry_ids() == ["clean", "noisy"]
        for entry_id in ("clean", "noisy"):
            manifest = run.entry_manifest(entry_id)
            assert manifest["status"] == "done"
            assert manifest["row_count"] == 2
            assert manifest["executor"] == "batch"
            assert manifest["scenario"] == "count-interference"
            for field in (
                "key", "scenario_digest", "code", "python", "numpy",
                "wall_time", "trials", "seed",
            ):
                assert field in manifest, field
            directory = run.entry_dir(entry_id)
            assert (directory / "rows.csv").exists()
            assert (directory / "table.md").exists()
            table = run.load_entry_table(entry_id)
            assert isinstance(table, ExperimentTable)
            assert len(table.rows) == 2
        assert run.manifest()["status"] == "done"
        # The ordered progress log names every entry in order.
        assert any("[1/2] clean" in line for line in log)
        assert any("[2/2] noisy" in line for line in log)

    def test_resume_skips_completed_entries_bit_identically(
        self, tmp_path
    ):
        spec = tiny_campaign()
        run_campaign(spec, store=tmp_path, jobs="batch", log=lambda _: None)
        before = entry_rows_bytes(tmp_path, "tiny", "clean")
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == [
            "cached", "cached",
        ]
        assert entry_rows_bytes(tmp_path, "tiny", "clean") == before

    def test_interrupted_campaign_resumes_bit_identically(
        self, tmp_path, monkeypatch
    ):
        """Kill mid-campaign; the resume must match an uninterrupted run."""
        spec = tiny_campaign()
        reference = tmp_path / "reference"
        interrupted = tmp_path / "interrupted"
        run_campaign(
            spec, store=reference, jobs="batch", log=lambda _: None
        )

        real_run_scenario = orchestrate.run_scenario
        calls = []

        def dying_run_scenario(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 2:
                raise KeyboardInterrupt  # the "kill" arrives here
            return real_run_scenario(*args, **kwargs)

        monkeypatch.setattr(
            orchestrate, "run_scenario", dying_run_scenario
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec, store=interrupted, jobs="batch",
                log=lambda _: None,
            )
        monkeypatch.setattr(
            orchestrate, "run_scenario", real_run_scenario
        )
        # Only the first entry completed; the second left no manifest.
        run = RunStore(interrupted).run(
            "tiny", run_id_for(spec, 0, None)
        )
        assert run.entry_manifest("clean")["status"] == "done"
        assert run.entry_manifest("noisy") is None

        result = run_campaign(
            spec, store=interrupted, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["cached", "ran"]
        for entry_id in ("clean", "noisy"):
            assert entry_rows_bytes(
                interrupted, "tiny", entry_id
            ) == entry_rows_bytes(reference, "tiny", entry_id)

    def test_failed_entry_recorded_and_rerun(self, tmp_path):
        bad = CampaignSpec(
            name="bad",
            title="t",
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="ok",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                    trials=2,
                ),
                # Unknown metric: resolves fine, fails at run time.
                CampaignEntry(
                    scenario="count-interference",
                    id="boom",
                    overrides={"metrics": ["no_such_metric"]},
                    trials=2,
                ),
            ),
        )
        result = run_campaign(
            bad, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "failed"]
        assert result.failed[0].error
        run = RunStore(tmp_path).latest_run("bad")
        manifest = run.entry_manifest("boom")
        assert manifest["status"] == "failed"
        assert "no_such_metric" in manifest["error"]
        # A resume keeps the finished entry and retries the failed one.
        result2 = run_campaign(
            bad, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result2.outcomes] == [
            "cached", "failed",
        ]

    def test_bad_entry_fails_before_any_execution(self, tmp_path):
        spec = CampaignSpec(
            name="doomed",
            title="t",
            entries=(
                CampaignEntry(scenario="count-interference", id="ok"),
                CampaignEntry(scenario="no-such-scenario", id="nope"),
            ),
        )
        with pytest.raises(HarnessError, match="unknown scenario"):
            run_campaign(spec, store=tmp_path, log=lambda _: None)
        assert RunStore(tmp_path).list_runs("doomed") == []

    def test_campaign_pool_matches_serial_rows(self, tmp_path):
        spec = tiny_campaign()
        serial = tmp_path / "serial"
        pooled = tmp_path / "pooled"
        run_campaign(spec, store=serial, log=lambda _: None)
        result = run_campaign(
            spec, store=pooled, campaign_jobs=2, log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "ran"]
        for entry_id in ("clean", "noisy"):
            assert entry_rows_bytes(
                pooled, "tiny", entry_id
            ) == entry_rows_bytes(serial, "tiny", entry_id)

    def test_seed_and_trials_precedence(self, tmp_path):
        spec = CampaignSpec(
            name="seeds",
            title="t",
            seed=3,
            trials=2,
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="pinned",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                    seed=11,
                    trials=5,
                ),
                CampaignEntry(
                    scenario="count-interference",
                    id="default",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                ),
            ),
        )
        run_campaign(spec, store=tmp_path, log=lambda _: None)
        run = RunStore(tmp_path).latest_run("seeds")
        pinned = run.entry_manifest("pinned")
        default = run.entry_manifest("default")
        # Explicit entry seed beats the campaign seed; entry trials
        # beat the campaign default.
        assert (pinned["seed"], pinned["trials"]) == (11, 5)
        assert (default["seed"], default["trials"]) == (3, 2)
        # An invocation-level trials override beats them all.
        run_campaign(
            spec, store=tmp_path, trials=1, log=lambda _: None
        )
        runs = RunStore(tmp_path).list_runs("seeds")
        assert len(runs) == 2  # the override landed in its own run dir
        smoke = RunStore(tmp_path).run("seeds", runs[-1])
        assert smoke.entry_manifest("pinned")["trials"] == 1

    def test_campaign_jobs_validation(self, tmp_path):
        with pytest.raises(HarnessError, match="campaign_jobs"):
            run_campaign(
                tiny_campaign(), store=tmp_path, campaign_jobs=0,
                log=lambda _: None,
            )


class TestStore:
    def test_completed_entry_requires_key_match(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        key = run.entry_manifest("clean")["key"]
        assert run.completed_entry("clean", key) is not None
        assert run.completed_entry("clean", "stale-key") is None

    def test_corrupt_rows_are_a_miss(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        (run.entry_dir("clean") / "rows.json").write_text("{broken")
        key = run.entry_manifest("clean")["key"]
        assert run.completed_entry("clean", key) is None

    def test_latest_run_missing_campaign_raises(self, tmp_path):
        with pytest.raises(HarnessError, match="no stored runs"):
            RunStore(tmp_path).latest_run("ghost")

    def test_store_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "envstore"))
        assert RunStore().root == tmp_path / "envstore"


class TestReportAndDiff:
    @pytest.fixture()
    def stored(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, jobs="batch",
            log=lambda _: None,
        )
        return tmp_path

    def test_report_contains_summary_and_tables(self, stored):
        run = RunStore(stored).latest_run("tiny")
        report = campaign_report(run)
        assert "# Campaign report — tiny @" in report
        assert "## Summary" in report
        assert "## clean" in report and "## noisy" in report
        assert "median_ratio" in report

    def test_write_report_outputs_md_and_csv(self, stored, tmp_path):
        run = RunStore(stored).latest_run("tiny")
        paths = write_report(run, tmp_path / "out")
        assert paths["markdown"].read_text().startswith(
            "# Campaign report"
        )
        header = paths["csv"].read_text().splitlines()[0]
        assert header.startswith("entry,scenario,status")

    def test_summary_rows_cover_all_entries(self, stored):
        run = RunStore(stored).latest_run("tiny")
        rows = summary_rows(run)
        assert [r["entry"] for r in rows] == ["clean", "noisy"]
        assert all(r["status"] == "done" for r in rows)

    def test_self_diff_is_identical(self, stored):
        md, identical = diff_refs(RunStore(stored), "tiny", "tiny")
        assert identical
        assert "Verdict: identical rows." in md

    def test_entry_diff_reports_deltas(self, stored):
        md, identical = diff_refs(
            RunStore(stored), "tiny:clean", "tiny:noisy"
        )
        assert not identical
        assert "activity (a)" in md and "Δ activity" in md
        assert "Verdict: runs differ." in md

    def test_run_vs_entry_mix_rejected(self, stored):
        with pytest.raises(HarnessError, match="cannot diff"):
            diff_refs(RunStore(stored), "tiny", "tiny:clean")

    def test_unknown_entry_names_alternatives(self, stored):
        with pytest.raises(HarnessError, match="no entry"):
            load_ref(RunStore(stored), "tiny:nope")

    def test_path_references_resolve(self, stored):
        store = RunStore(stored)
        run = store.latest_run("tiny")
        ref = load_ref(store, str(run.path))
        assert ref.run.campaign == "tiny"
        entry_ref = load_ref(store, str(run.entry_dir("clean")))
        assert entry_ref.entry_id == "clean"

    def test_explicit_run_id_reference(self, stored):
        store = RunStore(stored)
        run_id = store.list_runs("tiny")[-1]
        ref = load_ref(store, f"tiny@{run_id}")
        assert ref.run.run_id == run_id
        with pytest.raises(HarnessError, match="no stored run"):
            load_ref(store, "tiny@s9-aaaaaaaaaa")


@pytest.mark.integration
class TestTrafficModelsAcceptance:
    """The ISSUE's pinned criterion: markov vs poisson from the store."""

    def test_stock_traffic_models_reports_without_reexecution(
        self, tmp_path, monkeypatch
    ):
        run_campaign(
            "traffic-models",
            trials=1,
            jobs="batch",
            store=tmp_path,
            log=lambda _: None,
        )

        # From here on, any execution attempt is a test failure: the
        # report and diff must come from the store alone.
        def forbid(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("report/diff re-executed a scenario")

        monkeypatch.setattr(orchestrate, "run_scenario", forbid)
        store = RunStore(tmp_path)
        report = campaign_report(store.latest_run("traffic-models"))
        assert "markov" in report and "poisson" in report
        assert "success" in report

        md, identical = diff_refs(
            store, "traffic-models:markov", "traffic-models:poisson"
        )
        assert not identical
        # The occupancy sweep aligns on the activity axis; the traffic
        # model column is the controlled difference.
        assert "model (a)" in md
        assert "markov" in md and "poisson" in md
        assert "activity" in md

    def test_campaign_cli_trials_run_is_disjoint_from_default(
        self, tmp_path
    ):
        spec = get_campaign("traffic-models")
        assert run_id_for(spec, 0, 1) != run_id_for(spec, 0, None)


class TestCampaignFiles:
    def test_example_campaign_files_load(self):
        from repro.campaigns import load_campaign_file

        tiny = load_campaign_file("examples/campaigns/tiny_suite.json")
        assert tiny.name == "tiny-suite"
        assert tiny.entry_ids() == ["counts-clean", "counts-noisy"]
        traffic = load_campaign_file(
            "examples/campaigns/traffic_small.json"
        )
        assert traffic.entry_ids() == ["markov", "poisson"]

    def test_campaign_file_round_trip(self, tmp_path):
        from repro.campaigns import load_campaign_file

        spec = tiny_campaign()
        path = tmp_path / "c.json"
        path.write_text(json.dumps(campaign_to_dict(spec)))
        assert load_campaign_file(path) == spec


def _killed_worker(payload):  # module-level: must pickle by reference
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)


class TestReviewRegressions:
    def test_dead_pool_worker_records_failure_not_crash(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            orchestrate, "_execute_entry", _killed_worker
        )
        result = run_campaign(
            tiny_campaign(), store=tmp_path, campaign_jobs=2,
            log=lambda _: None,
        )
        assert [o.status for o in result.outcomes] == [
            "failed", "failed",
        ]
        assert all("worker died" in o.error for o in result.outcomes)
        run = RunStore(tmp_path).latest_run("tiny")
        assert run.manifest()["status"] == "partial"

    def test_diff_ignores_stale_rows_behind_failed_manifest(
        self, tmp_path
    ):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        run = RunStore(tmp_path).latest_run("tiny")
        # Simulate: the entry most recently failed, but an older
        # success left rows.json behind.
        manifest = run.entry_manifest("clean")
        run.write_failed_entry("clean", manifest, "boom")
        md, identical = diff_refs(
            RunStore(tmp_path), "tiny:clean", "tiny:noisy"
        )
        assert not identical
        assert "No completed rows" in md

    def test_campaign_file_string_trials_fails_cleanly(self):
        with pytest.raises(HarnessError, match="must be an integer"):
            campaign_from_dict(
                {
                    "name": "x",
                    "entries": [
                        {"scenario": "count-interference",
                         "trials": "not-a-number"},
                    ],
                }
            )
        # Integral strings coerce (JSON written by other tools).
        spec = campaign_from_dict(
            {
                "name": "x",
                "trials": "4",
                "entries": [{"scenario": "count-interference"}],
            }
        )
        assert spec.trials == 4

    def test_list_valued_overrides_rejected_cleanly(self):
        with pytest.raises(HarnessError, match="overrides must be"):
            campaign_from_dict(
                {
                    "name": "x",
                    "entries": [
                        {"scenario": "count-interference",
                         "overrides": ["sweep.axes.m=[2]"]},
                    ],
                }
            )

    def test_write_report_entry_scope_matches_printed_report(
        self, tmp_path
    ):
        from repro.campaigns import write_report

        run_campaign(
            tiny_campaign(), store=tmp_path / "s", log=lambda _: None
        )
        run = RunStore(tmp_path / "s").latest_run("tiny")
        paths = write_report(run, tmp_path / "out", entry_id="clean")
        text = paths["markdown"].read_text()
        assert text.startswith("# Entry report")
        assert "noisy" not in text
        assert paths["csv"].name == "rows.csv"
        header = paths["csv"].read_text().splitlines()[0]
        assert "median_ratio" in header

    def test_no_tmp_files_survive_a_completed_run(self, tmp_path):
        run_campaign(
            tiny_campaign(), store=tmp_path, log=lambda _: None
        )
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_campaign_name_must_be_a_slug(self):
        for bad in ("../evil", "has space", "a@b", "a:b", ""):
            with pytest.raises(HarnessError, match="slug|non-empty"):
                CampaignSpec(
                    name=bad,
                    title="t",
                    entries=(CampaignEntry(scenario="E1"),),
                )

    def test_corrupt_rows_shape_reruns_entry_on_resume(self, tmp_path):
        spec = tiny_campaign()
        run_campaign(spec, store=tmp_path, jobs="batch", log=lambda _: None)
        run = RunStore(tmp_path).latest_run("tiny")
        rows = run.entry_dir("clean") / "rows.json"
        payload = json.loads(rows.read_text())
        payload["rows"] = 42  # valid JSON, wrong shape
        rows.write_text(json.dumps(payload))
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran", "cached"]

    def test_non_string_fields_fail_cleanly(self):
        with pytest.raises(HarnessError, match="entry 0 id must be"):
            campaign_from_dict(
                {"name": "x",
                 "entries": [{"scenario": "E1", "id": 3}]}
            )
        with pytest.raises(
            HarnessError, match="entry 0 scenario must be"
        ):
            campaign_from_dict({"name": "x", "entries": [{"scenario": 1}]})
        with pytest.raises(HarnessError, match="campaign name must be"):
            campaign_from_dict({"name": 3, "entries": ["E1"]})

    def test_string_tags_rejected_not_exploded(self):
        with pytest.raises(HarnessError, match="list of strings"):
            campaign_from_dict(
                {"name": "x", "entries": ["E1"], "tags": "paper"}
            )


def axed_campaign(ordering="factorial", order_seed=None, **kwargs):
    """A cheap $axis-stamped campaign: one template over a 2x2 grid."""
    return CampaignSpec(
        name="axed",
        title="axed study",
        axes={"m": [2, 4], "activity": [0.0, 0.5]},
        ordering=ordering,
        order_seed=order_seed,
        trials=2,
        entries=(
            CampaignEntry(
                scenario="count-interference",
                id="grid",
                overrides={
                    "sweep.axes.m": ["$m"],
                    "sweep.axes.activity": ["$activity"],
                },
            ),
        ),
        **kwargs,
    )


class TestDesign:
    def test_factorial_stamping_ids_and_typed_substitution(self):
        design = expand_campaign(axed_campaign())
        assert design.entry_ids() == [
            "grid-2-0-0", "grid-2-0-5", "grid-4-0-0", "grid-4-0-5",
        ]
        first = design.entries[0]
        # The exact-token string becomes the *typed* axis value, not
        # its string rendering: [2], not ["2"].
        assert first.overrides == {
            "sweep.axes.m": [2],
            "sweep.axes.activity": [0.0],
        }
        assert design.entries[-1].overrides == {
            "sweep.axes.m": [4],
            "sweep.axes.activity": [0.5],
        }

    def test_expansion_is_idempotent(self):
        design = expand_campaign(axed_campaign())
        assert design.axes == {}
        assert design.ordering == "factorial"
        assert design.order_seed is None
        assert expand_campaign(design) == design

    def test_run_id_derives_from_declared_spec_not_expansion(self):
        spec = axed_campaign()
        assert run_id_for(spec, 0, None) != run_id_for(
            expand_campaign(spec), 0, None
        )

    def test_digest_covers_axes_and_ordering(self):
        base = campaign_digest(axed_campaign())
        assert campaign_digest(
            axed_campaign(ordering="shuffled", order_seed=1)
        ) != base
        narrowed = campaign_from_dict(
            {
                **campaign_to_dict(axed_campaign()),
                "axes": {"m": [2], "activity": [0.0, 0.5]},
            }
        )
        assert campaign_digest(narrowed) != base

    def test_axes_round_trip_through_dict(self):
        spec = axed_campaign(ordering="shuffled", order_seed=9)
        back = campaign_from_dict(campaign_to_dict(spec))
        assert back == spec
        assert campaign_digest(back) == campaign_digest(spec)

    def test_shuffled_ordering_is_deterministic(self):
        """The acceptance pin: a fixed seed stamps an identical entry
        list twice; the permutation itself is pinned to the module's
        own Fisher-Yates so no library upgrade can move it."""
        once = expand_campaign(axed_campaign(ordering="shuffled"))
        twice = expand_campaign(axed_campaign(ordering="shuffled"))
        assert once.entries == twice.entries
        factorial_ids = expand_campaign(axed_campaign()).entry_ids()
        # order_seed is None -> falls back to the campaign seed (0).
        assert once.entry_ids() == seeded_shuffle(factorial_ids, 0)
        seeded = expand_campaign(
            axed_campaign(ordering="shuffled", order_seed=7)
        )
        assert seeded.entry_ids() == seeded_shuffle(factorial_ids, 7)
        assert sorted(seeded.entry_ids()) == sorted(factorial_ids)

    def test_seeded_shuffle_is_a_permutation_and_seed_sensitive(self):
        items = list(range(10))
        a = seeded_shuffle(items, 1)
        b = seeded_shuffle(items, 2)
        assert sorted(a) == items and sorted(b) == items
        assert a == seeded_shuffle(items, 1)
        assert a != b
        assert items == list(range(10))  # input untouched

    def test_blocked_groups_by_first_declared_axis(self):
        spec = CampaignSpec(
            name="blocked",
            title="t",
            axes={"m": [2, 4]},
            ordering="blocked",
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="plain",
                    overrides={"sweep.axes.m": [8]},
                ),
                CampaignEntry(
                    scenario="count-interference",
                    id="a",
                    overrides={"sweep.axes.m": ["$m"]},
                ),
                CampaignEntry(
                    scenario="count-interference",
                    id="b",
                    overrides={"sweep.axes.m": ["$m"]},
                ),
            ),
        )
        # Factorial would interleave by template (a-2, a-4, b-2, b-4);
        # blocked groups by axis value, non-referencing entries first.
        assert expand_campaign(spec).entry_ids() == [
            "plain", "a-2", "b-2", "a-4", "b-4",
        ]

    def test_unreferenced_axis_rejected(self):
        spec = CampaignSpec(
            name="dead",
            title="t",
            axes={"ghost": [1, 2]},
            entries=(
                CampaignEntry(scenario="count-interference", id="x"),
            ),
        )
        with pytest.raises(HarnessError, match="unreferenced axes"):
            expand_campaign(spec)

    def test_stamped_id_collision_rejected(self):
        spec = CampaignSpec(
            name="clash",
            title="t",
            axes={"m": [2]},
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="x",
                    overrides={"sweep.axes.m": ["$m"]},
                ),
                CampaignEntry(scenario="count-interference", id="x-2"),
            ),
        )
        with pytest.raises(HarnessError, match="duplicate entry ids"):
            expand_campaign(spec)

    def test_undeclared_tokens_pass_through(self):
        spec = CampaignSpec(
            name="passthru",
            title="t",
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="x",
                    overrides={"protocol.params.m": "$m"},
                ),
            ),
        )
        design = expand_campaign(spec)
        # $m names no declared axis: it stays a scenario-level
        # placeholder for the sweep scope downstream.
        assert design.entries[0].overrides == {
            "protocol.params.m": "$m"
        }

    def test_embedded_token_splices_as_text(self):
        spec = CampaignSpec(
            name="embed",
            title="t",
            axes={"activity": [0.5]},
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="x",
                    overrides={
                        "title": "act=$activity",
                        "sweep.axes.activity": ["$activity"],
                    },
                ),
            ),
        )
        entry = expand_campaign(spec).entries[0]
        assert entry.id == "x-0-5"
        assert entry.overrides["title"] == "act=0.5"
        assert entry.overrides["sweep.axes.activity"] == [0.5]

    def test_axis_validation(self):
        with pytest.raises(HarnessError, match="axis"):
            axed_campaign().__class__(
                name="x",
                title="t",
                axes={"Bad Name": [1]},
                entries=(CampaignEntry(scenario="E1"),),
            )
        with pytest.raises(HarnessError, match="axis"):
            CampaignSpec(
                name="x",
                title="t",
                axes={"m": []},
                entries=(CampaignEntry(scenario="E1"),),
            )
        with pytest.raises(HarnessError, match="ordering"):
            CampaignSpec(
                name="x",
                title="t",
                ordering="alphabetical",
                entries=(CampaignEntry(scenario="E1"),),
            )

    def test_axis_stamped_campaign_runs_and_resumes(self, tmp_path):
        spec = axed_campaign()
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result.outcomes] == ["ran"] * 4
        run = RunStore(tmp_path).latest_run("axed")
        assert run.entry_ids() == [
            "grid-2-0-0", "grid-2-0-5", "grid-4-0-0", "grid-4-0-5",
        ]
        result2 = run_campaign(
            spec, store=tmp_path, jobs="batch", log=lambda _: None
        )
        assert [o.status for o in result2.outcomes] == ["cached"] * 4

    def test_axis_stamped_interrupted_resume_bit_identical(
        self, tmp_path, monkeypatch
    ):
        """The acceptance pin: a $axis-stamped campaign killed mid-run
        resumes bit-identically against an uninterrupted reference."""
        spec = axed_campaign()
        reference = tmp_path / "reference"
        interrupted = tmp_path / "interrupted"
        run_campaign(
            spec, store=reference, jobs="batch", log=lambda _: None
        )

        real_run_scenario = orchestrate.run_scenario
        calls = []

        def dying_run_scenario(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 3:
                raise KeyboardInterrupt
            return real_run_scenario(*args, **kwargs)

        monkeypatch.setattr(
            orchestrate, "run_scenario", dying_run_scenario
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                spec, store=interrupted, jobs="batch",
                log=lambda _: None,
            )
        monkeypatch.setattr(
            orchestrate, "run_scenario", real_run_scenario
        )
        run = RunStore(interrupted).run(
            "axed", run_id_for(spec, 0, None)
        )
        assert run.entry_manifest("grid-2-0-0")["status"] == "done"
        assert run.entry_manifest("grid-4-0-5") is None

        result = run_campaign(
            spec, store=interrupted, jobs="batch", log=lambda _: None
        )
        assert sorted(o.status for o in result.outcomes) == [
            "cached", "cached", "ran", "ran",
        ]
        for entry_id in (
            "grid-2-0-0", "grid-2-0-5", "grid-4-0-0", "grid-4-0-5",
        ):
            assert entry_rows_bytes(
                interrupted, "axed", entry_id
            ) == entry_rows_bytes(reference, "axed", entry_id)


def gated_spec(rule, baselines=("base",), name="judged"):
    """A gated campaign skeleton for synthetic-store gate tests."""
    entries = [
        CampaignEntry(
            scenario="count-interference", id=bid, role="baseline"
        )
        for bid in baselines
    ]
    entries.append(
        CampaignEntry(
            scenario="count-interference",
            id="var",
            role="variant",
            success_delta=rule,
        )
    )
    return CampaignSpec(name=name, title="t", entries=tuple(entries))


def synthetic_run(store_dir, spec, rows_by_entry):
    """A hand-built stored run: campaign.json plus one done entry per
    rows list — full control over metric values, no execution."""
    run = RunStore(store_dir).run(spec.name, "s0-synthetic")
    design = expand_campaign(spec)
    run.write_campaign(
        {
            "campaign": campaign_to_dict(spec),
            "digest": campaign_digest(spec),
            "seed": 0,
            "trials": None,
            "entry_ids": design.entry_ids(),
        }
    )
    for entry_id, rows in rows_by_entry.items():
        run.write_entry(
            entry_id,
            {"scenario": "synthetic", "key": "k"},
            ExperimentTable(entry_id, entry_id, rows),
        )
    return run


class TestGateSemantics:
    def test_exact_tie_at_threshold_passes(self, tmp_path):
        """The rule is a floor, not a strict bound: margin == threshold
        passes; one epsilon tighter fails the same stored rows."""
        spec = gated_spec(
            SuccessDelta(metric="x", threshold=0.5)
        )
        run = synthetic_run(
            tmp_path,
            spec,
            {
                "base": [{"x": 1.0}, {"x": 2.0}],  # mean 1.5
                "var": [{"x": 2.0}, {"x": 2.0}],   # mean 2.0
            },
        )
        report = evaluate_run(run)
        assert report.status == "pass"
        verdict = report.verdicts[0]
        assert verdict.margin == pytest.approx(0.5)
        assert gate_exit_code(report) == 0
        # Same store, tightened rule: store-only re-judging flips it.
        tightened = gated_spec(
            SuccessDelta(metric="x", threshold=0.5000001)
        )
        report2 = evaluate_run(run, spec=tightened)
        assert report2.status == "fail"
        assert gate_exit_code(report2) == 1

    def test_decrease_direction_orients_margin(self, tmp_path):
        spec = gated_spec(
            SuccessDelta(
                metric="latency", direction="decrease", threshold=1.0
            )
        )
        run = synthetic_run(
            tmp_path,
            spec,
            {
                "base": [{"latency": 10.0}],
                "var": [{"latency": 8.0}],
            },
        )
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.status == "pass"
        assert verdict.delta == pytest.approx(-2.0)
        assert verdict.margin == pytest.approx(2.0)

    def test_nan_metric_fails_not_errors(self, tmp_path):
        """An undefined metric (None -> NaN) cannot demonstrate the
        margin: that is a *fail* verdict, not an evaluation error."""
        spec = gated_spec(SuccessDelta(metric="x"))
        run = synthetic_run(
            tmp_path,
            spec,
            {
                "base": [{"x": 1.0}],
                "var": [{"x": None}, {"x": 5.0}],
            },
        )
        report = evaluate_run(run)
        verdict = report.verdicts[0]
        assert verdict.status == "fail"
        assert "NaN" in verdict.reason
        assert verdict.to_dict()["margin"] is None  # NaN -> None
        assert gate_exit_code(report) == 1

    def test_missing_baseline_entry_errors(self, tmp_path):
        spec = gated_spec(
            SuccessDelta(metric="x", baseline="ghost")
        )
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        report = evaluate_run(run)
        verdict = report.verdicts[0]
        assert verdict.status == "error"
        assert "ghost" in verdict.reason
        assert report.status == "error"
        assert gate_exit_code(report) == 2

    def test_unrun_entry_errors(self, tmp_path):
        spec = gated_spec(SuccessDelta(metric="x"))
        run = synthetic_run(
            tmp_path, spec, {"var": [{"x": 2.0}]}  # base never ran
        )
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.status == "error"
        assert "no stored result" in verdict.reason

    def test_multi_baseline_pooling(self, tmp_path):
        """rule.baseline=None pools every role-baseline entry's rows
        into one column before aggregating."""
        spec = gated_spec(
            SuccessDelta(metric="x", threshold=0.0),
            baselines=("b1", "b2"),
        )
        run = synthetic_run(
            tmp_path,
            spec,
            {
                "b1": [{"x": 1.0}],
                "b2": [{"x": 3.0}],
                "var": [{"x": 2.0}],
            },
        )
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.baselines == ("b1", "b2")
        assert verdict.baseline_value == pytest.approx(2.0)  # pooled mean
        assert verdict.status == "pass"  # tie at threshold 0
        # min-aggregation over the same pool: baseline min is 1.0.
        strict = gated_spec(
            SuccessDelta(metric="x", aggregation="min", threshold=1.0),
            baselines=("b1", "b2"),
        )
        verdict2 = evaluate_run(run, spec=strict).verdicts[0]
        assert verdict2.baseline_value == pytest.approx(1.0)
        assert verdict2.margin == pytest.approx(1.0)
        assert verdict2.status == "pass"

    def test_pinned_baseline_ignores_pool(self, tmp_path):
        spec = gated_spec(
            SuccessDelta(metric="x", baseline="b2"),
            baselines=("b1", "b2"),
        )
        run = synthetic_run(
            tmp_path,
            spec,
            {
                "b1": [{"x": 100.0}],
                "b2": [{"x": 1.0}],
                "var": [{"x": 2.0}],
            },
        )
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.baselines == ("b2",)
        assert verdict.status == "pass"

    def test_missing_column_and_non_numeric_error(self, tmp_path):
        spec = gated_spec(SuccessDelta(metric="nope"))
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.status == "error"
        assert "no column" in verdict.reason

        textual = gated_spec(SuccessDelta(metric="x"), name="textual")
        run2 = synthetic_run(
            tmp_path,
            textual,
            {"base": [{"x": "fast"}], "var": [{"x": 2.0}]},
        )
        verdict2 = evaluate_run(run2).verdicts[0]
        assert verdict2.status == "error"
        assert "non-numeric" in verdict2.reason

    def test_corrupt_rows_behind_done_manifest_error(self, tmp_path):
        spec = gated_spec(SuccessDelta(metric="x"))
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        (run.entry_dir("base") / "rows.json").unlink()
        verdict = evaluate_run(run).verdicts[0]
        assert verdict.status == "error"
        assert "marked done" in verdict.reason
        # vouched_entry_table is the raising primitive underneath.
        with pytest.raises(StoreError, match="marked done"):
            run.vouched_entry_table("base")

    def test_error_outranks_fail_outranks_pass(self, tmp_path):
        from repro.campaigns import GateReport, GateVerdict

        rule = SuccessDelta(metric="x")

        def verdict(status):
            return GateVerdict(
                variant="v", baselines=("b",), rule=rule, status=status
            )

        def report(*statuses):
            return GateReport(
                campaign="c",
                run_id="r",
                verdicts=tuple(verdict(s) for s in statuses),
            )

        assert report("pass", "pass").status == "pass"
        assert report("pass", "fail").status == "fail"
        assert report("fail", "error").status == "error"
        assert report().status == "error"  # ungated: caller mistake
        assert gate_exit_code(report()) == 2

    def test_evaluate_requires_stored_campaign(self, tmp_path):
        run = RunStore(tmp_path).run("bare", "s0-x")
        with pytest.raises(HarnessError, match="no stored campaign"):
            evaluate_run(run)

    def test_verdict_table_shows_rule_and_status(self, tmp_path):
        spec = gated_spec(SuccessDelta(metric="x", threshold=0.5))
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        report = evaluate_run(run)
        table = verdict_table(report)
        assert "PASS" in table
        assert "mean(x) increase >= 0.5" in table
        assert "margin 1 >= 0.5" in table

    def test_report_includes_gate_section(self, tmp_path):
        from repro.campaigns import gate_section

        spec = gated_spec(SuccessDelta(metric="x"))
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        section = gate_section(run)
        assert section is not None
        assert "Gate verdict: **PASS**" in section
        report = campaign_report(run)
        assert "## Gates" in report
        # Ungated runs grow no section.
        plain = synthetic_run(
            tmp_path, tiny_campaign(), {"clean": [{"x": 1.0}]}
        )
        assert gate_section(plain) is None

    def test_gate_evaluation_is_store_only(self, tmp_path, monkeypatch):
        spec = gated_spec(SuccessDelta(metric="x"))
        run = synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )

        def forbid(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("gate evaluation executed a scenario")

        monkeypatch.setattr(orchestrate, "run_scenario", forbid)
        report = evaluate_run(run)
        assert report.passed
        # And it reproduces the identical verdict on a second pass.
        assert evaluate_run(run) == report


class TestGateSpecValidation:
    def test_variant_requires_rule(self):
        with pytest.raises(HarnessError, match="success_delta"):
            CampaignEntry(
                scenario="E1", id="v", role="variant"
            )

    def test_rule_requires_variant_role(self):
        with pytest.raises(HarnessError, match="role"):
            CampaignEntry(
                scenario="E1",
                id="b",
                role="baseline",
                success_delta=SuccessDelta(metric="x"),
            )

    def test_variant_requires_some_baseline(self):
        with pytest.raises(HarnessError, match="baseline"):
            CampaignSpec(
                name="x",
                title="t",
                entries=(
                    CampaignEntry(
                        scenario="E1",
                        id="v",
                        role="variant",
                        success_delta=SuccessDelta(metric="x"),
                    ),
                ),
            )

    def test_rule_field_validation(self):
        with pytest.raises(HarnessError, match="direction"):
            SuccessDelta(metric="x", direction="sideways")
        with pytest.raises(HarnessError, match="aggregation"):
            SuccessDelta(metric="x", aggregation="mode")
        with pytest.raises(HarnessError, match="threshold"):
            SuccessDelta(metric="x", threshold=-1.0)
        with pytest.raises(HarnessError, match="metric"):
            SuccessDelta(metric="")

    def test_unknown_role_rejected(self):
        with pytest.raises(HarnessError, match="role"):
            CampaignEntry(scenario="E1", id="x", role="control")

    def test_gated_round_trip(self):
        spec = gated_spec(
            SuccessDelta(
                metric="x",
                direction="decrease",
                threshold=2.5,
                aggregation="median",
                baseline="base",
            )
        )
        back = campaign_from_dict(campaign_to_dict(spec))
        assert back == spec
        assert back.gated()
        assert campaign_digest(back) == campaign_digest(spec)

    def test_unknown_rule_keys_rejected(self):
        with pytest.raises(HarnessError, match="success_delta"):
            campaign_from_dict(
                {
                    "name": "x",
                    "entries": [
                        {"scenario": "E1", "id": "b",
                         "role": "baseline"},
                        {
                            "scenario": "E1",
                            "id": "v",
                            "role": "variant",
                            "success_delta": {
                                "metric": "x", "zz": 1
                            },
                        },
                    ],
                }
            )


class TestGatedOrchestration:
    def test_run_campaign_judges_gates_and_persists_verdicts(
        self, tmp_path
    ):
        spec = CampaignSpec(
            name="selfgate",
            title="t",
            trials=2,
            entries=(
                CampaignEntry(
                    scenario="count-interference",
                    id="base",
                    role="baseline",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                ),
                CampaignEntry(
                    scenario="count-interference",
                    id="same",
                    role="variant",
                    overrides={
                        "sweep.axes.m": [2],
                        "sweep.axes.activity": [0.0],
                    },
                    # Identical workload, threshold 0: an exact tie,
                    # which must pass (the rule is a floor).
                    success_delta=SuccessDelta(
                        metric="median_ratio", threshold=0.0
                    ),
                ),
            ),
        )
        log = []
        result = run_campaign(
            spec, store=tmp_path, jobs="batch", log=log.append
        )
        assert result.gates is not None
        assert result.gates.passed
        assert any(
            "gate same: PASS" in line for line in log
        )
        run = RunStore(tmp_path).latest_run("selfgate")
        persisted = run.manifest()["gates"]
        assert persisted["status"] == "pass"
        assert persisted == result.gates.to_dict()
        # The store-only path agrees with the just-run verdict.
        assert evaluate_run(run).to_dict() == persisted

    def test_ungated_campaign_has_no_gates(self, tmp_path):
        result = run_campaign(
            tiny_campaign(), store=tmp_path, jobs="batch",
            log=lambda _: None,
        )
        assert result.gates is None
        run = RunStore(tmp_path).latest_run("tiny")
        assert "gates" not in run.manifest()


@pytest.mark.integration
class TestGateAcceptance:
    """The ISSUE's pinned criteria: the gated stock campaign passes
    through the CLI, flipping the declared direction fails it, and the
    stored run re-judges identically without execution."""

    def test_gated_stock_campaign_cli_flow(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        store = tmp_path / "store"
        cache = tmp_path / "cache"
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base_argv = [
            "--trials", "1", "--jobs", "batch",
            "--store", str(store),
            "--cache", "--cache-dir", str(cache),
        ]

        code = main(
            ["run-campaign", "cseek-vs-naive", *base_argv, "--gate"]
        )
        first = capsys.readouterr().out
        assert code == 0
        assert "Gate verdict: PASS" in first
        assert "cseek" in first
        # The CLI appended the verdict table to GITHUB_STEP_SUMMARY.
        assert "PASS" in summary.read_text()

        # Store-only re-judging: no execution allowed, identical
        # verdict table as the run that just passed.
        def forbid(*args, **kwargs):  # pragma: no cover — must not run
            raise AssertionError("gate re-executed a scenario")

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(orchestrate, "run_scenario", forbid)
            code = main(
                ["gate", "cseek-vs-naive", "--store", str(store)]
            )
        regate = capsys.readouterr().out
        assert code == 0
        table = [ln for ln in first.splitlines() if ln.startswith("|")]
        retable = [
            ln for ln in regate.splitlines() if ln.startswith("|")
        ]
        assert table and retable == table

        # Flip the declared direction: the same stored scenario rows
        # (replayed from the result cache) must now fail the gate with
        # exit 1.
        flipped = campaign_to_dict(get_campaign("cseek-vs-naive"))
        for entry in flipped["entries"]:
            if entry.get("role") == "variant":
                entry["success_delta"]["direction"] = "decrease"
        flipped_path = tmp_path / "flipped.json"
        flipped_path.write_text(json.dumps(flipped))
        code = main(
            ["run-campaign", str(flipped_path), *base_argv, "--gate"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "Gate verdict: FAIL" in out

    def test_run_campaign_without_gate_keeps_plain_exit(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        code = main(
            [
                "run-campaign", "cseek-vs-naive",
                "--trials", "1", "--jobs", "batch",
                "--store", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The orchestrator still logs the verdicts; the exit code just
        # does not depend on them without --gate.
        assert "gate cseek: PASS" in out
        assert "Gate verdict" not in out


class TestGateCli:
    def test_gate_rejects_entry_refs(self, tmp_path, capsys):
        from repro.cli import main

        spec = gated_spec(SuccessDelta(metric="x"))
        synthetic_run(tmp_path, spec, {"base": [{"x": 1.0}]})
        code = main(
            ["gate", "judged:base", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "drop the :entry suffix" in capsys.readouterr().err

    def test_gate_on_ungated_campaign_errors(self, tmp_path, capsys):
        from repro.cli import main

        synthetic_run(
            tmp_path, tiny_campaign(), {"clean": [{"x": 1.0}]}
        )
        code = main(["gate", "tiny", "--store", str(tmp_path)])
        assert code == 2
        assert "no gates" in capsys.readouterr().err

    def test_gate_exit_codes_from_store(self, tmp_path, capsys):
        from repro.cli import main

        spec = gated_spec(SuccessDelta(metric="x", threshold=0.5))
        synthetic_run(
            tmp_path,
            spec,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        assert main(["gate", "judged", "--store", str(tmp_path)]) == 0
        assert "PASS" in capsys.readouterr().out

        failing = gated_spec(
            SuccessDelta(metric="x", threshold=9.0), name="failing"
        )
        synthetic_run(
            tmp_path,
            failing,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        assert main(["gate", "failing", "--store", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

        broken = gated_spec(
            SuccessDelta(metric="nope"), name="broken"
        )
        synthetic_run(
            tmp_path,
            broken,
            {"base": [{"x": 1.0}], "var": [{"x": 2.0}]},
        )
        assert main(["gate", "broken", "--store", str(tmp_path)]) == 2
        assert "ERROR" in capsys.readouterr().out


class TestGatedExampleFile:
    def test_gated_example_loads_and_expands(self):
        from repro.campaigns import load_campaign_file

        spec = load_campaign_file(
            "examples/campaigns/gated_cseek.json"
        )
        assert spec.name == "gated-cseek"
        assert spec.gated()
        assert spec.ordering == "blocked"
        assert spec.axes == {"activity": (0.8,)}
        design = expand_campaign(spec)
        assert design.entry_ids() == ["naive-0-8", "cseek-0-8"]
        naive, cseek = design.entries
        assert naive.role == "baseline"
        assert naive.overrides["protocol.kind"] == "naive_discovery"
        assert naive.overrides["sweep.axes.activity"] == [0.8]
        assert cseek.role == "variant"
        assert cseek.success_delta.metric == "discovered_fraction"
        assert cseek.success_delta.threshold == 0.01
