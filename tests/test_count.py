"""Unit tests for the COUNT procedure (Lemma 1)."""

import numpy as np
import pytest

from repro.core import ProtocolConstants, count_schedule, run_count_step
from repro.model import ProtocolError


def star_setup(m):
    """One listener (node 0) with m broadcasting neighbors on channel 0."""
    n = m + 1
    adj = np.zeros((n, n), dtype=bool)
    adj[0, 1:] = True
    adj[1:, 0] = True
    channels = np.zeros(n, dtype=np.int64)
    tx_role = np.ones(n, dtype=bool)
    tx_role[0] = False
    return adj, channels, tx_role


class TestSchedule:
    def test_round_structure(self):
        consts = ProtocolConstants(count_round_slots=4.0)
        rounds, length = count_schedule(8, log_n=5, constants=consts)
        assert rounds == 4  # lg 8 + 1
        assert length == 20

    def test_max_count_one(self):
        rounds, _ = count_schedule(1, 3, ProtocolConstants())
        assert rounds == 2

    def test_rejects_bad_max_count(self):
        with pytest.raises(ProtocolError):
            count_schedule(0, 3, ProtocolConstants())


class TestArgmaxEstimates:
    @pytest.mark.parametrize("m", [1, 2, 4, 8, 16])
    def test_estimate_within_constant_factor(self, m):
        """Median estimate over trials stays within [m/4, 4m]."""
        consts = ProtocolConstants(
            count_rule="argmax", count_round_slots=8.0
        )
        adj, channels, tx_role = star_setup(m)
        estimates = []
        rng = np.random.default_rng(1234)
        for _ in range(15):
            out = run_count_step(
                adj, channels, tx_role,
                max_count=16, log_n=5, constants=consts, rng=rng,
            )
            estimates.append(out.estimates[0])
        med = float(np.median(estimates))
        assert m / 4 <= med <= 4 * m, f"m={m} median={med}"

    def test_zero_broadcasters_zero_estimate(self):
        adj, channels, tx_role = star_setup(3)
        tx_role[:] = False  # everyone listens
        out = run_count_step(
            adj, channels, tx_role,
            max_count=8, log_n=4,
            constants=ProtocolConstants(), rng=np.random.default_rng(0),
        )
        assert out.estimates[0] == 0.0

    def test_broadcasters_report_zero(self):
        adj, channels, tx_role = star_setup(2)
        out = run_count_step(
            adj, channels, tx_role,
            max_count=8, log_n=4,
            constants=ProtocolConstants(), rng=np.random.default_rng(0),
        )
        assert (out.estimates[1:] == 0.0).all()

    def test_slot_accounting(self):
        consts = ProtocolConstants(count_round_slots=2.0)
        adj, channels, tx_role = star_setup(1)
        out = run_count_step(
            adj, channels, tx_role,
            max_count=4, log_n=3, constants=consts,
            rng=np.random.default_rng(0),
        )
        rounds, length = count_schedule(4, 3, consts)
        assert out.num_slots == rounds * length
        assert out.step.heard_from.shape[0] == out.num_slots

    def test_identities_recoverable_from_step(self):
        adj, channels, tx_role = star_setup(1)
        out = run_count_step(
            adj, channels, tx_role,
            max_count=4, log_n=4,
            constants=ProtocolConstants(), rng=np.random.default_rng(2),
        )
        # The sole broadcaster transmits with p=1 in round one: node 0
        # must hear identity 1.
        assert 1 in out.step.heard_sets()[0]


class TestFirstCrossingEstimates:
    @pytest.mark.slow
    @pytest.mark.parametrize("m", [1, 4, 16])
    def test_paper_band(self, m):
        """With long rounds the paper's rule lands in ~[m, 4m]."""
        consts = ProtocolConstants(
            count_rule="first_crossing", count_round_slots=192.0
        )
        adj, channels, tx_role = star_setup(m)
        rng = np.random.default_rng(99)
        estimates = []
        for _ in range(9):
            out = run_count_step(
                adj, channels, tx_role,
                max_count=16, log_n=5, constants=consts, rng=rng,
            )
            estimates.append(out.estimates[0])
        med = float(np.median(estimates))
        assert m / 2 <= med <= 8 * m, f"m={m} median={med}"

    def test_silence_never_crosses(self):
        consts = ProtocolConstants(count_rule="first_crossing")
        adj, channels, tx_role = star_setup(2)
        tx_role[:] = False
        out = run_count_step(
            adj, channels, tx_role,
            max_count=8, log_n=4, constants=consts,
            rng=np.random.default_rng(0),
        )
        assert out.estimates[0] == 0.0


class TestConcurrentChannels:
    def test_independent_channels_do_not_mix(self):
        """Two listener/broadcaster pairs on different channels."""
        n = 4
        adj = np.zeros((n, n), dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        adj[2, 3] = adj[3, 2] = True
        channels = np.array([5, 5, 9, 9], dtype=np.int64)
        tx_role = np.array([False, True, False, True])
        out = run_count_step(
            adj, channels, tx_role,
            max_count=2, log_n=4,
            constants=ProtocolConstants(), rng=np.random.default_rng(3),
        )
        assert out.estimates[0] > 0
        assert out.estimates[2] > 0
        assert out.step.heard_sets()[0] == {1}
        assert out.step.heard_sets()[2] == {3}


class TestBatchedCount:
    @pytest.mark.parametrize("rule", ["argmax", "first_crossing"])
    def test_batch_matches_serial_per_trial(self, rule):
        from repro.core import run_count_step_batch

        consts = ProtocolConstants(count_rule=rule, count_round_slots=8.0)
        adj, channels, tx_role = star_setup(4)
        seeds = [11, 12, 13]
        batch = run_count_step_batch(
            adj, channels, tx_role,
            max_count=8, log_n=4, constants=consts,
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        assert batch.num_trials == len(seeds)
        for b, s in enumerate(seeds):
            ref = run_count_step(
                adj, channels, tx_role,
                max_count=8, log_n=4, constants=consts,
                rng=np.random.default_rng(s),
            )
            assert np.array_equal(batch.estimates[b], ref.estimates)
            assert np.array_equal(
                batch.round_receptions[b], ref.round_receptions
            )
            sliced = batch.trial(b)
            assert np.array_equal(
                sliced.step.heard_from, ref.step.heard_from
            )
            assert sliced.num_slots == ref.num_slots

    def test_rejects_empty_rngs(self):
        from repro.core import run_count_step_batch

        adj, channels, tx_role = star_setup(2)
        with pytest.raises(ProtocolError):
            run_count_step_batch(
                adj, channels, tx_role,
                max_count=4, log_n=3,
                constants=ProtocolConstants(), rngs=[],
            )
