#!/usr/bin/env python3
"""Quickstart: neighbor discovery on a small cognitive radio network.

Builds a 20-node network where every radio can access 8 channels and
every neighboring pair shares exactly 2 of them, runs CSEEK, and checks
the result against ground truth.

Run:
    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro.analysis import cseek_bound
from repro.core import CSeek, verify_discovery
from repro.graphs import build_network, random_regular


def main(seed: int = 0) -> int:
    # 1. A connectivity graph: 20 radios, each with 4 neighbors.
    graph = random_regular(20, 4, seed=seed)

    # 2. A channel assignment: 8 channels per radio, every neighboring
    #    pair sharing exactly k=2 (labels are private per node).
    net = build_network(graph, c=8, k=2, seed=seed)
    kn = net.knowledge()
    print(f"network: n={kn.n} c={kn.c} k={kn.k} kmax={kn.kmax} "
          f"Delta={kn.max_degree} D={kn.diameter}")

    # 3. Run CSEEK (Theorem 4): every node discovers its neighbors.
    result = CSeek(net, seed=seed + 1).run()
    report = verify_discovery(result, net)

    print(f"schedule: {result.total_slots:,} slots "
          f"(part one {result.ledger.get('part1'):,}, "
          f"part two {result.ledger.get('part2'):,})")
    print(f"discovered all neighbors: {report.success}")
    print(f"last useful reception at slot {report.completion_slot:,}")
    print(f"bound shape c^2/k + (kmax/k)*Delta = "
          f"{cseek_bound(kn.c, kn.k, kn.kmax, kn.max_degree):.0f} "
          "(x polylog factors)")

    # 4. Inspect one node's view.
    u = 0
    print(f"node {u} heard neighbors: {sorted(result.discovered[u])} "
          f"(truth: {sorted(net.true_neighbor_sets()[u])})")
    return 0 if report.success else 1


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
