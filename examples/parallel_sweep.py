#!/usr/bin/env python3
"""Parallel + batched experiment execution and the result cache.

Runs the same E1 sweep through the harness's three execution strategies
(serial reference, process-parallel workers, vectorized batch) and shows
that the rows are bit-identical — per-trial seeds derive up front from
the master seed, so strategy is a pure throughput decision. Then replays
the table from the deterministic result cache.

Run:
    python examples/parallel_sweep.py [seed]
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.harness import run_experiment


def timed(label: str, **kwargs):
    start = time.perf_counter()
    table = run_experiment("E1", trials=16, **kwargs)
    elapsed = time.perf_counter() - start
    print(f"{label:>28}: {elapsed:6.2f}s  ({len(table.rows)} rows)")
    return table


def main(seed: int = 0) -> int:
    print("E1 (COUNT accuracy), 16 trials per sweep point:")
    serial = timed("serial (jobs=None)", seed=seed)
    parallel = timed("process pool (jobs=2)", seed=seed, jobs=2)
    batched = timed("vectorized (jobs='batch')", seed=seed, jobs="batch")

    identical = serial.rows == parallel.rows == batched.rows
    print(f"rows identical across strategies: {identical}")

    with tempfile.TemporaryDirectory() as cache_dir:
        timed("first run, cold cache", seed=seed, jobs="batch",
              cache=True, cache_dir=cache_dir)
        cached = timed("second run, cache hit", seed=seed,
                       cache=True, cache_dir=cache_dir)
        print(f"cache replay matches: {cached.rows == serial.rows}")

    return 0 if identical else 1


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
