#!/usr/bin/env python3
"""Filtering for well-connected neighbors with CKSEEK.

In a heterogeneous deployment, some links share many channels (robust)
and some share few (fragile). An application that only wants robust
links runs CKSEEK with a threshold khat: it finds every neighbor
sharing >= khat channels in strictly less time than full discovery
(Theorem 6).

Run:
    python examples/wellconnected_filter.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import CKSeek, exchange_slot_cost, verify_k_discovery
from repro.core.constants import ProtocolConstants
from repro.graphs import build_network, random_regular


def main(seed: int = 0) -> int:
    graph = random_regular(20, 4, seed=seed)
    net = build_network(
        graph, c=16, k=2, seed=seed, kind="heterogeneous", kmax=4
    )
    kn = net.knowledge()
    print(f"network: n={kn.n} c={kn.c}, link overlaps in "
          f"[{kn.k}, {kn.kmax}]")
    full_cost = exchange_slot_cost(kn, ProtocolConstants.fast())
    print(f"full CSEEK discovery schedule: {full_cost:,} slots\n")

    for khat in range(kn.k, kn.kmax + 1):
        good = net.good_neighbor_sets(khat)
        delta_khat = net.max_good_degree(khat)
        algo = CKSeek(
            net, khat=khat, delta_khat=delta_khat, seed=seed + khat
        )
        result = algo.run()
        report = verify_k_discovery(result, net, khat=khat)
        saved = 100.0 * (1.0 - result.total_slots / full_cost)
        print(f"khat={khat}: targets neighbors sharing >= {khat} channels "
              f"({sum(len(s) for s in good)} directed pairs, "
              f"Delta_khat={delta_khat})")
        print(f"  schedule {result.total_slots:,} slots "
              f"({saved:+.0f}% vs full discovery), "
              f"found all good neighbors: {report.success}")
    print("\ntakeaway: the stricter the filter, the cheaper the search — "
          "CSEEK's structure works as a generic 'well-connectedness' "
          "filter (Section 4.4).")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
