#!/usr/bin/env python3
"""Discovery while licensed users come and go.

The paper motivates cognitive radios with licensed (primary) users
whose transmissions secondary devices must tolerate. This script runs
CSEEK while a primary-user traffic model occupies channels with ON/OFF
bursts, showing the two regimes experiment E12 measures: short bursts
are absorbed by COUNT's within-step redundancy, long bursts erase whole
meeting opportunities.

Run:
    python examples/primary_user_interference.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import CSeek, verify_discovery
from repro.graphs import build_network, random_regular
from repro.sim import PrimaryUserTraffic


def main(seed: int = 0) -> int:
    net = build_network(
        random_regular(20, 4, seed=seed), c=8, k=2, seed=seed + 1
    )
    kn = net.knowledge()
    channels = sorted(net.assignment.universe())
    print(f"network: n={kn.n} c={kn.c} k={kn.k} Delta={kn.max_degree}; "
          f"{len(channels)} physical channels under primary-user control")

    scenarios = [
        ("no interference", None),
        ("30% occupancy, short bursts (4 slots)",
         dict(activity=0.3, mean_dwell=4.0)),
        ("60% occupancy, short bursts (4 slots)",
         dict(activity=0.6, mean_dwell=4.0)),
        ("60% occupancy, long bursts (500 slots)",
         dict(activity=0.6, mean_dwell=500.0)),
    ]
    baseline = None
    for name, params in scenarios:
        jammer = (
            PrimaryUserTraffic(channels, seed=seed + 7, **params)
            if params
            else None
        )
        result = CSeek(net, seed=seed + 2, jammer=jammer).run()
        report = verify_discovery(result, net)
        completion = report.completion_slot
        if baseline is None and completion is not None:
            baseline = completion
        stretch = (
            f"{completion / baseline:.2f}x baseline"
            if completion is not None and baseline
            else "n/a"
        )
        status = "complete" if report.success else (
            f"INCOMPLETE ({len(report.missing)} pairs missing)"
        )
        slot_text = f"{completion:,}" if completion is not None else "-"
        print(f"  {name:<42} {status:<28} "
              f"completion slot {slot_text} ({stretch})")

    print("\ntakeaway: the w.h.p. constants in CSEEK's schedule buy real "
          "slack — only occupancy bursts longer than a COUNT step, at "
          "high duty cycles, defeat discovery.")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
