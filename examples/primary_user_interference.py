#!/usr/bin/env python3
"""Discovery while licensed users come and go.

The paper motivates cognitive radios with licensed (primary) users
whose transmissions secondary devices must tolerate. This script runs
CSEEK under the pluggable spectrum environments of
``repro.sim.environment``, showing the regimes experiments E12 and the
markov-vs-poisson scenario measure: short Markov bursts are absorbed by
COUNT's within-step redundancy, long bursts erase whole meeting
opportunities, and memoryless (Poisson) losses of the same occupancy
are far milder than bursty ones. The final section batches all jammed
trials through ``CSeekBatch`` — one occupancy recurrence for the whole
trial axis, bit-identical to the serial runs.

Run:
    python examples/primary_user_interference.py [seed]
"""

from __future__ import annotations

import sys

from repro.core import CSeek, CSeekBatch, verify_discovery
from repro.graphs import build_network, random_regular
from repro.sim import MarkovTraffic, PoissonTraffic


def main(seed: int = 0) -> int:
    net = build_network(
        random_regular(20, 4, seed=seed), c=8, k=2, seed=seed + 1
    )
    kn = net.knowledge()
    channels = sorted(net.assignment.universe())
    print(f"network: n={kn.n} c={kn.c} k={kn.k} Delta={kn.max_degree}; "
          f"{len(channels)} physical channels under primary-user control")

    scenarios = [
        ("no interference", None),
        ("markov 30%, short bursts (4 slots)",
         MarkovTraffic(channels, activity=0.3, mean_dwell=4.0)),
        ("markov 60%, short bursts (4 slots)",
         MarkovTraffic(channels, activity=0.6, mean_dwell=4.0)),
        ("markov 60%, long bursts (500 slots)",
         MarkovTraffic(channels, activity=0.6, mean_dwell=500.0)),
        ("poisson 60% (memoryless slots)",
         PoissonTraffic(channels, activity=0.6)),
    ]
    baseline = None
    for name, environment in scenarios:
        result = CSeek(net, seed=seed + 2, environment=environment).run()
        report = verify_discovery(result, net)
        completion = report.completion_slot
        if baseline is None and completion is not None:
            baseline = completion
        stretch = (
            f"{completion / baseline:.2f}x baseline"
            if completion is not None and baseline
            else "n/a"
        )
        status = "complete" if report.success else (
            f"INCOMPLETE ({len(report.missing)} pairs missing)"
        )
        slot_text = f"{completion:,}" if completion is not None else "-"
        print(f"  {name:<42} {status:<28} "
              f"completion slot {slot_text} ({stretch})")

    # The same environment serves the trial-batched runner: every
    # protocol step jams the whole trial axis with one gather.
    env = MarkovTraffic(channels, activity=0.6, mean_dwell=4.0)
    seeds = [seed + 2 + i for i in range(4)]
    batched = CSeekBatch(net, environment=env).run(seeds)
    successes = sum(
        verify_discovery(r, net).success for r in batched
    )
    print(f"\nbatched: {len(seeds)} jammed trials in lockstep, "
          f"{successes}/{len(seeds)} complete (trial {seeds[0]} "
          "bit-identical to the serial run above)")

    print("\ntakeaway: the w.h.p. constants in CSEEK's schedule buy real "
          "slack — at matched occupancy, memoryless losses are absorbed; "
          "only bursts longer than a COUNT step, at high duty cycles, "
          "defeat discovery.")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
