#!/usr/bin/env python3
"""Why discovery can't be faster: the bipartite hitting game.

Section 6 reduces neighbor discovery between two radios to a game: a
hidden k-matching between two c-vertex sides (the radios' private
channel labelings) must be hit by proposing one edge per round. Lemma
10 bounds any strategy at c^2/(8k) rounds. This script plays the game
with reference players and with the Lemma 11 reduction player that
replays CSEEK's own channel choices, showing they all respect the
floor.

Run:
    python examples/lowerbound_game.py [seed]
"""

from __future__ import annotations

import statistics
import sys

from repro.analysis import hitting_game_floor
from repro.lowerbounds import (
    CSeekReductionPlayer,
    FreshRandomPlayer,
    HittingGame,
    UniformRandomPlayer,
    play,
)


def mean_rounds(make_player, c: int, k: int, trials: int, seed: int) -> float:
    rounds = []
    for t in range(trials):
        game = HittingGame(c=c, k=k, seed=seed + t)
        player = make_player(seed + 1000 + t)
        transcript = play(game, player, max_rounds=200 * c * c)
        if not transcript.won:
            raise RuntimeError("player exceeded the generous cap")
        rounds.append(transcript.rounds)
    return statistics.mean(rounds)


def main(seed: int = 0) -> int:
    c, k, trials = 16, 2, 25
    floor = hitting_game_floor(c, k)
    print(f"game: hidden {k}-matching over two {c}-vertex sides")
    print(f"Lemma 10 floor: c^2/(8k) = {floor:.0f} rounds\n")

    players = [
        ("uniform random", lambda s: UniformRandomPlayer(seed=s)),
        ("fresh random (no repeats)", lambda s: FreshRandomPlayer(seed=s)),
        ("CSEEK via Lemma 11 reduction",
         lambda s: CSeekReductionPlayer(k=k, seed=s)),
    ]
    for name, factory in players:
        mean = mean_rounds(factory, c, k, trials, seed)
        print(f"  {name:<30} mean rounds to hit: {mean:8.1f} "
              f"(>= floor: {mean >= floor})")

    schedule = CSeekReductionPlayer(k=k, seed=0).schedule_slots(c)
    print(f"\nCSEEK's own two-node schedule is {schedule:,} slots; every "
          "slot is one game round in the reduction, so Theorem 13's "
          "Omega(c^2/k) floor applies to it — and to any other "
          "discovery algorithm.")
    return 0


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
