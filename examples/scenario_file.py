#!/usr/bin/env python3
"""Define a workload as a JSON scenario file — no Python required.

Loads ``examples/scenarios/pu_star_discovery.json`` (a declarative
:class:`~repro.scenarios.spec.ScenarioSpec`: star topology, shared
licensed core, primary-user interference sweep, CSEEK), runs it through
the scenario compiler, then re-runs it with ``--set``-style overrides —
the same knobs ``python -m repro run-scenario`` exposes — and shows the
rows are identical across execution strategies.

Run:
    python examples/scenario_file.py [seed]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.scenarios import load_scenario_file, run_scenario

SCENARIO_FILE = Path(__file__).resolve().parent / "scenarios" / (
    "pu_star_discovery.json"
)


def main(seed: int = 0) -> int:
    spec = load_scenario_file(SCENARIO_FILE)
    print(f"loaded scenario {spec.name!r}: {spec.title}")
    print(f"  sweep points: {len(spec.sweep.points())}, "
          f"default trials: {spec.trials}")

    table = run_scenario(spec, trials=2, seed=seed, jobs="batch")
    print()
    print(table.to_markdown())

    # The same spec, narrowed from the command line's point of view:
    # run-scenario examples/scenarios/pu_star_discovery.json \
    #     --set sweep.axes.activity=[0.5] --set sweep.axes.dwell=[200.0]
    overrides = {
        "sweep.axes.activity": "[0.5]",
        "sweep.axes.dwell": "[200.0]",
    }
    narrowed = run_scenario(
        spec, trials=2, seed=seed, overrides=overrides, jobs="batch"
    )
    serial = run_scenario(
        spec, trials=2, seed=seed, overrides=overrides
    )
    identical = narrowed.rows == serial.rows
    print(f"overridden run: {len(narrowed.rows)} row(s); "
          f"batched == serial rows: {identical}")
    return 0 if identical else 1


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
