#!/usr/bin/env python3
"""White-space scenario: discovery when overlap is emergent.

The paper's motivating scenario (Section 1): radios opportunistically
use idle licensed spectrum, so every device ends up with a different
usable channel subset. Here each of 16 radios samples 6 channels from a
12-channel pool; two radios can talk iff they share at least k=2
channels — connectivity is *induced by the spectrum environment*, not
designed. CSEEK must discover it from nothing.

Run:
    python examples/whitespace_discovery.py [seed]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.core import CSeek, verify_discovery
from repro.graphs import build_random_subset_network


def main(seed: int = 0) -> int:
    net = build_random_subset_network(
        n=16, c=6, k=2, pool_size=12, seed=seed
    )
    kn = net.knowledge()
    print("emergent white-space network:")
    print(f"  n={kn.n} radios, c={kn.c} channels each from a pool of 12")
    print(f"  induced edges: {len(net.edges())}, Delta={kn.max_degree}, "
          f"D={kn.diameter}")
    print(f"  realized overlap range: [{kn.k}, {kn.kmax}]")
    overlap_histogram = Counter(
        net.edge_overlap(u, v) for u, v in net.edges()
    )
    print(f"  overlap histogram: {dict(sorted(overlap_histogram.items()))}")

    result = CSeek(net, seed=seed + 1).run()
    report = verify_discovery(result, net)
    print(f"CSEEK: {result.total_slots:,} slots scheduled, "
          f"complete discovery: {report.success}, "
          f"finished at slot {report.completion_slot:,}")

    # Which physical channels carried the discoveries?
    used = Counter(
        event.channel for event in result.trace.first_heard.values()
    )
    busiest = used.most_common(3)
    print(f"  busiest discovery channels (global id, receptions): {busiest}")
    return 0 if report.success else 1


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
