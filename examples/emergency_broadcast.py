#!/usr/bin/env python3
"""Emergency alert over a multi-hop cognitive radio mesh.

A chain of neighborhoods (cliques) bridged by single links — diameter
grows with the chain while each radio keeps few neighbors. A source
node floods an alert with CGCAST (discovery -> edge coloring ->
color-scheduled dissemination) and with the naive random-hopping
strawman; the per-hop costs show Theorem 9's point: once the schedule
exists, pushing the message one hop costs O~(Delta) slots instead of
O~(c^2/k).

Run:
    python examples/emergency_broadcast.py [seed]
"""

from __future__ import annotations

import sys

from repro.baselines import NaiveBroadcast
from repro.core import CGCast
from repro.graphs import build_network, path_of_cliques
from repro.lowerbounds import level_completion_slots, per_hop_costs


def main(seed: int = 0) -> int:
    graph = path_of_cliques(6, 4)
    net = build_network(graph, c=8, k=1, seed=seed)
    kn = net.knowledge()
    print(f"mesh: {kn.n} radios in 6 neighborhoods, "
          f"D={kn.diameter}, Delta={kn.max_degree}, c={kn.c}, k={kn.k}")
    print(f"per-hop cost regime: Delta={kn.max_degree} vs "
          f"c^2/k={kn.c * kn.c // kn.k}")

    cg = CGCast(net, source=0, seed=seed + 1).run()
    print("\nCGCAST:")
    print(f"  delivered to all: {cg.success} "
          f"(valid coloring: {cg.coloring_valid})")
    for phase, slots in cg.ledger.items():
        print(f"  {phase:<22} {slots:>12,} slots")
    diss = cg.ledger.get("dissemination")
    print(f"  dissemination per hop: {diss / kn.diameter:,.0f} slots")

    nv = NaiveBroadcast(net, source=0, seed=seed + 1).run()
    print("\nnaive random hopping:")
    print(f"  delivered to all: {nv.success} in {nv.completion_slot:,} slots"
          f" ({nv.completion_slot / kn.diameter:,.0f} per hop)")

    timings = level_completion_slots(net, 0, nv.informed_slot)
    hops = per_hop_costs(timings)
    print(f"  naive per-level completion deltas: {hops}")
    print("  (negative deltas mean a farther level finished before a "
          "nearer one's last node — levels overlap in a clique chain)")

    print("\ntakeaway: the one-time CGCAST setup buys a reusable schedule "
          "whose per-hop cost beats naive hopping whenever "
          "Delta << c^2/k (repeat broadcasts amortize the setup).")
    return 0 if (cg.success and nv.success) else 1


if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    sys.exit(main(seed))
